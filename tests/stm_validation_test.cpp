// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Validation fast-path properties: the commit write-summary ring, the
// batched read-set scan, timebase extension, and read-set dedup.
//
// The load-bearing invariants, each exercised deterministically below:
//
//   * a transaction whose reads are untouched always extends under
//     concurrent disjoint commits (no spurious read-validation aborts),
//   * the ring only ever SKIPS work it can prove unnecessary: a summary
//     false positive (bit collision) falls back to the full scan and a
//     range that outran the ring falls back via kUnknown — neither path
//     can wrongly extend or wrongly commit,
//   * read-set dedup is outcome-neutral: the same aborts and the same
//     final state as the duplicate-logging baseline,
//   * extension accepts locks the transaction itself holds in eager mode
//     (regression: it used to fail on ANY locked word),
//   * a killed/stalled-committer snapshot read cannot livelock (bounded
//     spin + direct kill poll),
//   * under GV4 the ring is gated off (shared timestamps would make a
//     published slot inconclusive) and everything degrades to the scan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "stm/addrfilter.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::ClockScheme;
using stm::Semantics;
using stm::ValidationScheme;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

// A growable pool of TVars with helpers to find cells whose filter bits
// satisfy a predicate — the summary hash depends on heap addresses, so
// collision/disjointness fixtures are SEARCHED for, not assumed.
struct CellPool {
  std::vector<std::unique_ptr<stm::TVar<long>>> vars;

  stm::TVar<long>& at(std::size_t i) { return *vars[i]; }
  std::uint64_t bit(std::size_t i) const {
    return stm::addr_filter_bit(&vars[i]->cell());
  }

  // Returns the index of a pool cell (allocating more as needed) whose
  // filter bit satisfies pred and whose index is not in `used`.
  template <typename Pred>
  std::size_t find(Pred pred, const std::vector<std::size_t>& used = {}) {
    for (std::size_t i = 0;; ++i) {
      if (i == vars.size()) {
        if (vars.size() > 100'000) ADD_FAILURE() << "no matching cell found";
        vars.push_back(std::make_unique<stm::TVar<long>>(0));
      }
      bool taken = false;
      for (std::size_t u : used) taken |= (u == i);
      if (!taken && pred(bit(i))) return i;
    }
  }
};

stm::TxStats slot_stats(int slot) {
  stm::Tx* t = stm::Runtime::instance().peek_slot(slot);
  return t != nullptr ? t->stats() : stm::TxStats{};
}

}  // namespace

// ---------------------------------------------------------------------
// Property: untouched reads always extend under concurrent disjoint
// commits — under both validation schemes.
// ---------------------------------------------------------------------

TEST(StmValidation, UntouchedReadsAlwaysExtend) {
  for (ValidationScheme scheme :
       {ValidationScheme::kScan, ValidationScheme::kSummary}) {
    ConfigGuard guard;
    auto& rt = stm::Runtime::instance();
    rt.config.validation_scheme = scheme;
    rt.config.clock_scheme = ClockScheme::kGv1;
    rt.config.enable_extension = true;
    rt.reset_stats();

    constexpr int kPrivate = 64;
    constexpr int kTxs = 20;
    std::vector<std::unique_ptr<stm::TVar<long>>> mine;
    for (int i = 0; i < kPrivate; ++i)
      mine.push_back(std::make_unique<stm::TVar<long>>(i));
    auto victim = std::make_unique<stm::TVar<long>>(0);
    std::vector<std::unique_ptr<stm::TVar<long>>> wcells;
    for (int i = 0; i < 3; ++i)
      wcells.push_back(std::make_unique<stm::TVar<long>>(0));
    long reader_commits = 0;

    test::run_rr_sim(4, [&](int id) {
      if (id == 0) {
        for (int t = 0; t < kTxs; ++t) {
          stm::atomically([&](stm::Tx& tx) {
            long sum = 0;
            for (auto& v : mine) sum += v->get(tx);
            // The victim is hot: by the time we read it the writers have
            // usually republished it past our rv, forcing an extension —
            // whose revalidation covers only our untouched private cells
            // and must therefore always succeed.
            sum += victim->get(tx);
            return sum;
          });
          ++reader_commits;
        }
      } else {
        for (int t = 0; t < 3 * kTxs; ++t) {
          stm::atomically([&](stm::Tx& tx) {
            victim->set(tx, victim->get(tx) + 1);
            auto& w = wcells[static_cast<std::size_t>(id - 1)];
            w->set(tx, w->get(tx) + 1);
          });
        }
      }
    });

    const stm::TxStats reader = slot_stats(0);
    EXPECT_EQ(reader_commits, kTxs);
    EXPECT_GT(reader.extensions, 0u) << "victim was never republished";
    EXPECT_EQ(reader.aborts_by_reason[static_cast<int>(
                  stm::AbortReason::kReadValidation)],
              0u)
        << "an untouched read set failed extension (scheme "
        << (scheme == ValidationScheme::kSummary ? "summary" : "scan") << ")";
    if (scheme == ValidationScheme::kSummary) {
      EXPECT_GT(reader.summary_skips + reader.summary_fallbacks, 0u)
          << "ring was never consulted";
    }
    test::drain_memory();
  }
}

// ---------------------------------------------------------------------
// Deterministic ring outcomes: clean skip, false-positive fallback,
// true-conflict abort, overflow fallback.  All use the same handshake
// shape: the observer opens its transaction (sampling rv) and logs its
// reads, then a writer fiber commits a known set of transactions, then
// the observer touches a trigger cell whose new version forces an
// extension (or commits, forcing commit-time validation).
// ---------------------------------------------------------------------

namespace {

struct RingFixtureConfig {
  ConfigGuard guard;
  RingFixtureConfig() {
    auto& rt = stm::Runtime::instance();
    rt.config.validation_scheme = ValidationScheme::kSummary;
    rt.config.clock_scheme = ClockScheme::kGv1;
    rt.config.enable_extension = true;
    rt.reset_stats();
  }
};

}  // namespace

TEST(StmValidation, ExtensionSkipsScanWhenRingProvesDisjoint) {
  RingFixtureConfig fix;
  CellPool pool;
  std::vector<std::size_t> rcells;
  std::uint64_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    rcells.push_back(pool.find([](std::uint64_t) { return true; }, rcells));
    mask |= pool.bit(rcells.back());
  }
  // Trigger and writer cells must not collide with the observer's read
  // summary, so the ring union over the writer's commits stays clean.
  const std::size_t trig =
      pool.find([&](std::uint64_t b) { return (b & mask) == 0; }, rcells);
  std::vector<std::size_t> used = rcells;
  used.push_back(trig);
  const std::size_t wcell = pool.find(
      [&](std::uint64_t b) { return (b & (mask | pool.bit(trig))) == 0; },
      used);

  std::atomic<int> reads_logged{0};
  std::atomic<int> writer_done{0};
  test::run_rr_sim(2, [&](int id) {
    if (id == 0) {
      stm::atomically([&](stm::Tx& tx) {
        long sum = 0;
        for (std::size_t r : rcells) sum += pool.at(r).get(tx);
        reads_logged.store(1);
        while (writer_done.load() == 0) vt::access();
        // Bumped past rv by the writer: forces an extension whose ring
        // range is exactly the writer's commits, all bit-disjoint from
        // our read summary.
        sum += pool.at(trig).get(tx);
        return sum;
      });
    } else {
      while (reads_logged.load() == 0) vt::access();
      for (int i = 0; i < 3; ++i) {
        stm::atomically(
            [&](stm::Tx& tx) { pool.at(wcell).set(tx, i); });
      }
      stm::atomically([&](stm::Tx& tx) { pool.at(trig).set(tx, 1); });
      writer_done.store(1);
    }
  });

  const stm::TxStats obs = slot_stats(0);
  EXPECT_EQ(obs.extensions, 1u);
  EXPECT_EQ(obs.summary_skips, 1u) << "disjoint range should skip the scan";
  EXPECT_EQ(obs.summary_fallbacks, 0u);
  EXPECT_EQ(obs.aborts, 0u);
  test::drain_memory();
}

TEST(StmValidation, FalsePositiveFallsBackToScanAndStillExtends) {
  RingFixtureConfig fix;
  CellPool pool;
  const std::size_t r0 = pool.find([](std::uint64_t) { return true; });
  // A DIFFERENT cell whose filter bit collides with the read cell's: the
  // writer commits it, the ring sees an intersection, and only the full
  // scan can prove the read survived.
  const std::size_t collider = pool.find(
      [&](std::uint64_t b) { return b == pool.bit(r0); }, {r0});
  const std::size_t trig = pool.find(
      [&](std::uint64_t b) { return (b & pool.bit(r0)) == 0; }, {r0, collider});

  std::atomic<int> reads_logged{0};
  std::atomic<int> writer_done{0};
  test::run_rr_sim(2, [&](int id) {
    if (id == 0) {
      stm::atomically([&](stm::Tx& tx) {
        const long before = pool.at(r0).get(tx);
        reads_logged.store(1);
        while (writer_done.load() == 0) vt::access();
        (void)pool.at(trig).get(tx);  // forces the extension
        const long after = pool.at(r0).get(tx);
        EXPECT_EQ(before, after) << "opacity violated after extension";
      });
    } else {
      while (reads_logged.load() == 0) vt::access();
      stm::atomically([&](stm::Tx& tx) { pool.at(collider).set(tx, 7); });
      stm::atomically([&](stm::Tx& tx) { pool.at(trig).set(tx, 1); });
      writer_done.store(1);
    }
  });

  const stm::TxStats obs = slot_stats(0);
  EXPECT_EQ(obs.extensions, 1u);
  EXPECT_GE(obs.summary_fallbacks, 1u)
      << "bit collision must force the scan fallback";
  EXPECT_EQ(obs.aborts, 0u) << "the scan proves the read intact: no abort";
  test::drain_memory();
}

TEST(StmValidation, TrueConflictNeverWronglyExtends) {
  RingFixtureConfig fix;
  CellPool pool;
  const std::size_t r0 = pool.find([](std::uint64_t) { return true; });
  const std::size_t trig = pool.find(
      [&](std::uint64_t b) { return (b & pool.bit(r0)) == 0; }, {r0});

  std::atomic<int> reads_logged{0};
  std::atomic<int> writer_done{0};
  int attempts = 0;
  long first_committed = -1;
  test::run_rr_sim(2, [&](int id) {
    if (id == 0) {
      first_committed = stm::atomically([&](stm::Tx& tx) {
        ++attempts;
        const long before = pool.at(r0).get(tx);
        reads_logged.store(1);
        while (writer_done.load() == 0) vt::access();
        (void)pool.at(trig).get(tx);
        // Only reachable when the extension succeeded: r0 must not have
        // changed under us (opacity).
        EXPECT_EQ(before, pool.at(r0).get(tx));
        return before;
      });
    } else {
      while (reads_logged.load() == 0) vt::access();
      // The writer REALLY overwrites the observer's read: the ring union
      // intersects for a true reason, the fallback scan fails, and the
      // observer must abort and re-run — never extend past the change.
      stm::atomically([&](stm::Tx& tx) { pool.at(r0).set(tx, 42); });
      stm::atomically([&](stm::Tx& tx) { pool.at(trig).set(tx, 1); });
      writer_done.store(1);
    }
  });

  const stm::TxStats obs = slot_stats(0);
  EXPECT_GE(attempts, 2) << "the overwritten read must abort the attempt";
  EXPECT_EQ(first_committed, 42) << "the committed run must see the new value";
  EXPECT_GE(obs.aborts_by_reason[static_cast<int>(
                stm::AbortReason::kReadValidation)],
            1u);
  test::drain_memory();
}

TEST(StmValidation, RingOverflowFallsBackToScan) {
  RingFixtureConfig fix;
  CellPool pool;
  const std::size_t r0 = pool.find([](std::uint64_t) { return true; });
  const std::size_t trig = pool.find(
      [&](std::uint64_t b) { return (b & pool.bit(r0)) == 0; }, {r0});
  const std::size_t wcell = pool.find(
      [&](std::uint64_t b) {
        return (b & (pool.bit(r0) | pool.bit(trig))) == 0;
      },
      {r0, trig});

  // More commits than ring slots between rv and the extension target:
  // the range cannot be answered from the ring no matter what the slots
  // hold, so the overflow guard must fire and the scan must decide.
  constexpr int kCommits =
      static_cast<int>(stm::Runtime::kSummaryRingSize) + 80;
  std::atomic<int> reads_logged{0};
  std::atomic<int> writer_done{0};
  test::run_rr_sim(
      2,
      [&](int id) {
        if (id == 0) {
          stm::atomically([&](stm::Tx& tx) {
            const long before = pool.at(r0).get(tx);
            reads_logged.store(1);
            while (writer_done.load() == 0) vt::access();
            (void)pool.at(trig).get(tx);
            EXPECT_EQ(before, pool.at(r0).get(tx));
          });
        } else {
          while (reads_logged.load() == 0) vt::access();
          for (int i = 0; i < kCommits; ++i) {
            stm::atomically([&](stm::Tx& tx) { pool.at(wcell).set(tx, i); });
          }
          stm::atomically([&](stm::Tx& tx) { pool.at(trig).set(tx, 1); });
          writer_done.store(1);
        }
      },
      /*max_cycles=*/200'000'000);

  const stm::TxStats obs = slot_stats(0);
  EXPECT_EQ(obs.extensions, 1u);
  EXPECT_GE(obs.ring_overflows, 1u) << "range wider than the ring";
  EXPECT_GE(obs.summary_fallbacks, 1u);
  EXPECT_EQ(obs.aborts, 0u);
  test::drain_memory();
}

TEST(StmValidation, CommitValidationSkipsScanViaRing) {
  RingFixtureConfig fix;
  CellPool pool;
  std::vector<std::size_t> rcells;
  std::uint64_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    rcells.push_back(pool.find([](std::uint64_t) { return true; }, rcells));
    mask |= pool.bit(rcells.back());
  }
  std::vector<std::size_t> used = rcells;
  const std::size_t wcell =
      pool.find([&](std::uint64_t b) { return (b & mask) == 0; }, used);
  used.push_back(wcell);
  const std::size_t own =
      pool.find([](std::uint64_t) { return true; }, used);

  std::atomic<int> reads_logged{0};
  std::atomic<int> writer_done{0};
  test::run_rr_sim(2, [&](int id) {
    if (id == 0) {
      stm::atomically([&](stm::Tx& tx) {
        long sum = 0;
        for (std::size_t r : rcells) sum += pool.at(r).get(tx);
        reads_logged.store(1);
        while (writer_done.load() == 0) vt::access();
        // An update commit after the writer's commits: wv > rv + 1, so
        // commit-time validation runs — and the ring answers it without
        // touching any of the 8 read cells.
        pool.at(own).set(tx, sum);
      });
    } else {
      while (reads_logged.load() == 0) vt::access();
      for (int i = 0; i < 4; ++i) {
        stm::atomically([&](stm::Tx& tx) { pool.at(wcell).set(tx, i); });
      }
      writer_done.store(1);
    }
  });

  const stm::TxStats obs = slot_stats(0);
  EXPECT_EQ(obs.summary_skips, 1u)
      << "commit-time validation should be answered by the ring";
  EXPECT_EQ(obs.aborts, 0u);
  EXPECT_EQ(pool.at(own).unsafe_load(),
            static_cast<long>(0));  // 8 zero-initialized cells
  test::drain_memory();
}

TEST(StmValidation, Gv4GatesTheRingOff) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.validation_scheme = ValidationScheme::kSummary;
  rt.config.clock_scheme = ClockScheme::kGv4;
  rt.config.enable_extension = true;
  rt.reset_stats();

  auto x = std::make_unique<stm::TVar<long>>(0);
  std::vector<std::unique_ptr<stm::TVar<long>>> cells;
  for (int i = 0; i < 8; ++i)
    cells.push_back(std::make_unique<stm::TVar<long>>(0));

  test::run_rr_sim(4, [&](int id) {
    for (int t = 0; t < 50; ++t) {
      stm::atomically([&](stm::Tx& tx) {
        long sum = 0;
        for (auto& c : cells) sum += c->get(tx);
        x->get(tx);
        auto& own = cells[static_cast<std::size_t>(id * 2)];
        own->set(tx, own->get(tx) + 1);
        return sum;
      });
    }
  });

  const stm::TxStats total = stm::Runtime::instance().aggregate_stats();
  // Under GV4 a slot stamped t cannot prove all commits at t published
  // (adopters share wv), so the ring must never be consulted.
  EXPECT_EQ(total.summary_skips, 0u);
  EXPECT_EQ(total.summary_fallbacks, 0u);
  EXPECT_EQ(total.ring_overflows, 0u);
  test::drain_memory();
}

// ---------------------------------------------------------------------
// Read-set dedup: suppression counts and outcome parity with the
// duplicate-logging baseline.
// ---------------------------------------------------------------------

TEST(StmValidation, DedupSuppressesRepeatedReads) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  auto x = std::make_unique<stm::TVar<long>>(5);
  auto y = std::make_unique<stm::TVar<long>>(7);

  // Dedup only arms together with summary validation (see Config).
  rt.config.validation_scheme = stm::ValidationScheme::kSummary;
  rt.config.clock_scheme = ClockScheme::kGv1;
  for (bool dedup : {false, true}) {
    rt.config.readset_dedup = dedup;
    rt.reset_stats();
    long got = 0;
    test::run_rr_sim(1, [&](int) {
      got = stm::atomically([&](stm::Tx& tx) {
        long sum = 0;
        for (int i = 0; i < 100; ++i) sum += x->get(tx) + y->get(tx);
        return sum;
      });
    });
    EXPECT_EQ(got, 100 * (5 + 7));
    const stm::TxStats st = slot_stats(0);
    EXPECT_EQ(st.readset_dedups, dedup ? 198u : 0u)
        << "dedup=" << dedup
        << ": 99 re-reads of each of two cells should be suppressed";
    EXPECT_EQ(st.commits, 1u);
  }
  test::drain_memory();
}

TEST(StmValidation, DedupPreservesConflictOutcomes) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();

  // Dedup only arms together with summary validation (see Config).
  rt.config.validation_scheme = stm::ValidationScheme::kSummary;
  rt.config.clock_scheme = ClockScheme::kGv1;
  for (bool dedup : {false, true}) {
    rt.config.readset_dedup = dedup;
    rt.reset_stats();
    auto x = std::make_unique<stm::TVar<long>>(0);
    auto y = std::make_unique<stm::TVar<long>>(0);
    std::atomic<int> a_read{0};
    std::atomic<int> b_wrote{0};
    int attempts = 0;

    test::run_rr_sim(2, [&](int id) {
      if (id == 0) {
        stm::atomically([&](stm::Tx& tx) {
          ++attempts;
          // Re-read the same cell so dedup has something to suppress in
          // the doomed first attempt.
          long v = x->get(tx);
          v += x->get(tx) - x->get(tx);
          a_read.store(1);
          while (b_wrote.load() == 0) vt::access();
          y->set(tx, v + 1);
        });
      } else {
        while (a_read.load() == 0) vt::access();
        stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 10); });
        b_wrote.store(1);
      }
    });

    // Identical outcome either way: the first attempt dies at commit
    // validation (x changed under it), the retry commits y = x + 1.
    const stm::TxStats a = slot_stats(0);
    EXPECT_EQ(attempts, 2) << "dedup=" << dedup;
    EXPECT_EQ(a.aborts_by_reason[static_cast<int>(
                  stm::AbortReason::kCommitValidation)],
              1u)
        << "dedup=" << dedup;
    EXPECT_EQ(x->unsafe_load(), 10);
    EXPECT_EQ(y->unsafe_load(), 11);
    if (dedup) {
      EXPECT_GE(a.readset_dedups, 2u);
    }
    test::drain_memory();
  }
}

// ---------------------------------------------------------------------
// Regression: extension must accept the transaction's OWN eager locks
// (validate_read_set always did; try_extend used to fail on any lock).
// ---------------------------------------------------------------------

TEST(StmValidation, EagerExtensionAcceptsOwnLocks) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.eager_writes = true;
  rt.config.enable_extension = true;
  rt.reset_stats();

  auto x = std::make_unique<stm::TVar<long>>(100);
  auto t = std::make_unique<stm::TVar<long>>(0);
  std::atomic<int> locked{0};
  std::atomic<int> bumped{0};

  test::run_rr_sim(2, [&](int id) {
    if (id == 0) {
      stm::atomically([&](stm::Tx& tx) {
        const long v = x->get(tx);   // logs x in the read set
        x->set(tx, v + 1);           // eager: takes x's lock NOW
        locked.store(1);
        while (bumped.load() == 0) vt::access();
        // The trigger was republished past rv: the extension's
        // revalidation covers x — locked by US — and must accept it.
        (void)t->get(tx);
      });
    } else {
      while (locked.load() == 0) vt::access();
      stm::atomically([&](stm::Tx& tx) { t->set(tx, 1); });
      bumped.store(1);
    }
  });

  const stm::TxStats a = slot_stats(0);
  EXPECT_GE(a.extensions, 1u);
  EXPECT_EQ(a.aborts_by_reason[static_cast<int>(
                stm::AbortReason::kReadValidation)],
            0u)
      << "extension spuriously failed on the transaction's own lock";
  EXPECT_EQ(a.aborts, 0u);
  EXPECT_EQ(x->unsafe_load(), 101);
  test::drain_memory();
}

// ---------------------------------------------------------------------
// Regression: a snapshot read spinning on a stalled committer's lock is
// bounded — it aborts and retries instead of livelocking.
// ---------------------------------------------------------------------

TEST(StmValidation, SnapshotReadBoundsSpinOnStalledCommitter) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.eager_writes = true;
  rt.reset_stats();

  auto x = std::make_unique<stm::TVar<long>>(0);
  std::atomic<int> locked{0};
  std::atomic<int> release{0};
  int snapshot_runs = 0;

  test::run_rr_sim(
      2,
      [&](int id) {
        if (id == 0) {
          // The stalled committer: eager-locks x and sits on the lock.
          stm::atomically([&](stm::Tx& tx) {
            x->set(tx, 1);  // eager: x's lock is held from here on
            locked.store(1);
            while (release.load() == 0) vt::access();
          });
        } else {
          while (locked.load() == 0) vt::access();
          stm::atomically(Semantics::kSnapshot, [&](stm::Tx& tx) {
            // Re-entered after each bounded-spin abort.  Release the
            // stalled writer once we have proven at least one retry
            // happened — an unbounded spin would never reach run 2.
            if (++snapshot_runs >= 2) release.store(1);
            return x->get(tx);
          });
        }
      },
      /*max_cycles=*/4'000'000);

  EXPECT_GE(snapshot_runs, 2) << "the bounded spin never fired";
  const stm::TxStats snap = slot_stats(1);
  EXPECT_GE(snap.aborts_by_reason[static_cast<int>(
                stm::AbortReason::kLockedByOther)],
            1u);
  EXPECT_EQ(x->unsafe_load(), 1);
  test::drain_memory();
}

// ---------------------------------------------------------------------
// Real OS threads under the summary scheme: invariant preservation and
// the TSan target for the ring's publish/consume pair (tsan_smoke runs
// exactly this test in a -fsanitize=thread build).
// ---------------------------------------------------------------------

TEST(StmValidation, RealThreadsSummaryInvariants) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.validation_scheme = ValidationScheme::kSummary;
  rt.config.clock_scheme = ClockScheme::kGv1;
  rt.config.enable_extension = true;
  rt.reset_stats();

  constexpr int kThreads = 4;
  constexpr int kCells = 32;
  constexpr int kIters = 2000;
  std::vector<std::unique_ptr<stm::TVar<long>>> cells;
  for (int i = 0; i < kCells; ++i)
    cells.push_back(std::make_unique<stm::TVar<long>>(0));

  vt::run_threads(kThreads, [&](int id) {
    std::uint64_t rng = 0x9e3779b9u * static_cast<std::uint64_t>(id + 1);
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < kIters; ++i) {
      if (i % 16 == 0) {
        // Read-only sweep: classic reads of every cell commit only if
        // they form a consistent snapshot — the transfer invariant must
        // hold inside the transaction.
        const long total = stm::atomically([&](stm::Tx& tx) {
          long sum = 0;
          for (auto& c : cells) sum += c->get(tx);
          return sum;
        });
        EXPECT_EQ(total, 0);
      } else {
        const std::size_t from = next() % kCells;
        const std::size_t to = next() % kCells;
        stm::atomically([&](stm::Tx& tx) {
          cells[from]->set(tx, cells[from]->get(tx) - 1);
          cells[to]->set(tx, cells[to]->get(tx) + 1);
        });
      }
    }
  });

  long total = 0;
  for (auto& c : cells) total += c->unsafe_load();
  EXPECT_EQ(total, 0);
  test::drain_memory();
}
