// demotx:expert-file: svc scenario test — asserts the request-class ->
// semantics-tier map itself, so it names the expert tiers by design.
//
// Transactional KV service (src/svc/): tier mapping honored per request
// class, per-session replies monotone, overload sheds without
// acked-then-lost, latency percentiles populated, durable puts logged.
// Registered via demotx_stm_test, so every test here also runs under
// the GV4+counter, summary-validation and sharded-clock environments.
#include "svc/openloop.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "dur/wal.hpp"
#include "harness/percentile.hpp"
#include "stm/runtime.hpp"
#include "svc/kvservice.hpp"

using namespace demotx;

namespace {

svc::SvcConfig small_config() {
  svc::SvcConfig cfg;
  cfg.workers = 2;
  cfg.sessions = 4;
  cfg.queue_cap = 128;
  cfg.deadline_cycles = 0;
  cfg.mean_interarrival = 8;
  cfg.total_requests = 96;
  cfg.bank_keys = 8;
  cfg.keys_per_session = 2;
  cfg.initial_balance = 50;
  return cfg;
}

std::uint64_t commits_for(stm::Semantics sem) {
  return stm::Runtime::instance().aggregate_stats().commits_by_sem[static_cast<
      int>(sem)];
}

}  // namespace

TEST(SvcKv, TierMapIsTheScenarioContract) {
  svc::KvService mixed(small_config(), 11);
  EXPECT_EQ(mixed.tier_for(svc::ReqClass::kGet), stm::Semantics::kElastic);
  EXPECT_EQ(mixed.tier_for(svc::ReqClass::kPut), stm::Semantics::kElastic);
  EXPECT_EQ(mixed.tier_for(svc::ReqClass::kScan), stm::Semantics::kSnapshot);
  EXPECT_EQ(mixed.tier_for(svc::ReqClass::kTransfer),
            stm::Semantics::kClassic);
  EXPECT_EQ(mixed.tier_for(svc::ReqClass::kAdmin), stm::Semantics::kClassic);

  svc::SvcConfig classic_cfg = small_config();
  classic_cfg.all_classic = true;
  svc::KvService classic(classic_cfg, 11);
  for (const auto c :
       {svc::ReqClass::kGet, svc::ReqClass::kPut, svc::ReqClass::kScan,
        svc::ReqClass::kTransfer, svc::ReqClass::kAdmin})
    EXPECT_EQ(classic.tier_for(c), stm::Semantics::kClassic);
}

TEST(SvcKv, TierMappingHonoredAtRuntime) {
  svc::KvService s(small_config(), 17);
  const svc::OpenLoopResult r = svc::run_open_loop(s);
  ASSERT_FALSE(r.hit_limit);
  std::string why;
  EXPECT_TRUE(s.check_replies(&why)) << why;
  // Every class must have been acked at this request count, and each
  // tier's commits must show up in the runtime's per-semantics counters.
  const svc::SvcStats& st = s.stats();
  for (int c = 0; c < svc::kNumReqClasses; ++c)
    EXPECT_GT(st.acked[c], 0u) << "class " << c << " never acked";
  EXPECT_GT(commits_for(stm::Semantics::kElastic), 0u);
  EXPECT_GT(commits_for(stm::Semantics::kSnapshot), 0u);
  EXPECT_GT(commits_for(stm::Semantics::kClassic), 0u);
}

TEST(SvcKv, AllClassicControlNeverLeavesTheDefaultTier) {
  svc::SvcConfig cfg = small_config();
  cfg.all_classic = true;
  svc::KvService s(cfg, 17);
  const svc::OpenLoopResult r = svc::run_open_loop(s);
  ASSERT_FALSE(r.hit_limit);
  std::string why;
  EXPECT_TRUE(s.check_replies(&why)) << why;
  EXPECT_EQ(commits_for(stm::Semantics::kElastic), 0u);
  EXPECT_EQ(commits_for(stm::Semantics::kSnapshot), 0u);
  EXPECT_GT(commits_for(stm::Semantics::kClassic), 0u);
}

TEST(SvcKv, RepliesMonotonePerSession) {
  // High contention (few sessions, tight arrivals) maximizes abort/retry
  // re-parking — the path that could reorder same-session replies if the
  // in-flight guard broke.
  svc::SvcConfig cfg = small_config();
  cfg.sessions = 2;
  cfg.mean_interarrival = 2;
  cfg.total_requests = 128;
  svc::KvService s(cfg, 23);
  const svc::OpenLoopResult r = svc::run_open_loop(s);
  ASSERT_FALSE(r.hit_limit);
  std::string why;
  EXPECT_TRUE(s.check_replies(&why)) << why;
  EXPECT_GT(s.stats().acked_total(), 0u);
  EXPECT_GT(r.goodput, 0.0);
}

TEST(SvcKv, OverloadShedsWithoutAckedThenLost) {
  svc::SvcConfig cfg = small_config();
  cfg.workers = 2;
  cfg.queue_cap = 4;          // tiny admission queue
  cfg.deadline_cycles = 256;  // and a tight deadline
  cfg.mean_interarrival = 1;  // arrivals far beyond capacity
  cfg.total_requests = 256;
  svc::KvService s(cfg, 29);
  const svc::OpenLoopResult r = svc::run_open_loop(s);
  ASSERT_FALSE(r.hit_limit);
  const svc::SvcStats& st = s.stats();
  EXPECT_GT(st.shed_total(), 0u) << "overload never shed";
  // Every arrival resolves exactly once, and no acked effect was lost,
  // no shed put leaked — all folded into the reply oracle.
  std::string why;
  EXPECT_TRUE(s.check_replies(&why)) << why;
  EXPECT_EQ(st.arrived, st.acked_total() + st.shed_total());
}

TEST(SvcKv, LatencyPercentilesPopulated) {
  svc::KvService s(small_config(), 31);
  const svc::OpenLoopResult r = svc::run_open_loop(s);
  ASSERT_FALSE(r.hit_limit);
  svc::SvcStats& st = s.stats();
  for (int c = 0; c < svc::kNumReqClasses; ++c) {
    ASSERT_GT(st.acked[c], 0u);
    EXPECT_EQ(st.lat[c].count(), st.acked[c]);
    const std::uint64_t p50 = st.lat[c].p50();
    const std::uint64_t p95 = st.lat[c].p95();
    const std::uint64_t p99 = st.lat[c].p99();
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, st.lat[c].max());
    EXPECT_GT(st.lat[c].max(), 0u);
  }
}

TEST(SvcKv, DurablePutsAppendRedoRecords) {
  svc::SvcConfig cfg = small_config();
  cfg.durable = true;
  svc::KvService s(cfg, 37);
  const svc::OpenLoopResult r = svc::run_open_loop(s);
  ASSERT_FALSE(r.hit_limit);
  std::string why;
  EXPECT_TRUE(s.check_replies(&why)) << why;
  const dur::WalStats w = dur::WalManager::instance().stats();
  EXPECT_GT(w.records, 0u);
  EXPECT_GT(w.acks, 0u);
}

TEST(SvcKv, ExplorationPolicyDegeneratesTimersSafely) {
  // Under kRandom the sleep calls become single yields (the schedule is
  // the adversary); the service must still drain and stay consistent.
  svc::SvcConfig cfg = small_config();
  cfg.total_requests = 48;
  svc::KvService s(cfg, 41);
  svc::OpenLoopOptions opts;
  opts.policy = vt::Scheduler::Policy::kRandom;
  opts.sched_seed = 97;
  const svc::OpenLoopResult r = svc::run_open_loop(s, opts);
  ASSERT_FALSE(r.hit_limit);
  std::string why;
  EXPECT_TRUE(s.check_replies(&why)) << why;
  EXPECT_EQ(s.stats().arrived, 48u);
}

TEST(SvcKv, FromEnvKnobsParseStrictlyAndClamp) {
  // The DEMOTX_SVC_* knobs ride the parse_env_knob contract (ISSUE 9
  // satellite): strict parse with garbage falling back to the default,
  // out-of-range clamping to the bound.
  ::setenv("DEMOTX_SVC_WORKERS", "7", 1);
  ::setenv("DEMOTX_SVC_SESSIONS", "garbage", 1);  // -> default 16
  ::setenv("DEMOTX_SVC_QUEUE", "99999999", 1);    // clamps to 1<<20
  ::setenv("DEMOTX_SVC_RATE", "12", 1);
  ::setenv("DEMOTX_SVC_DURABLE", "1", 1);
  const svc::SvcConfig cfg = svc::SvcConfig::from_env();
  ::unsetenv("DEMOTX_SVC_WORKERS");
  ::unsetenv("DEMOTX_SVC_SESSIONS");
  ::unsetenv("DEMOTX_SVC_QUEUE");
  ::unsetenv("DEMOTX_SVC_RATE");
  ::unsetenv("DEMOTX_SVC_DURABLE");
  EXPECT_EQ(cfg.workers, 7);
  EXPECT_EQ(cfg.sessions, 16u);
  EXPECT_EQ(cfg.queue_cap, std::uint64_t{1} << 20);
  EXPECT_EQ(cfg.mean_interarrival, 12u);
  EXPECT_TRUE(cfg.durable);
  // Unset environment: pure defaults.
  const svc::SvcConfig defaults = svc::SvcConfig::from_env();
  EXPECT_EQ(defaults.workers, 4);
  EXPECT_FALSE(defaults.durable);
}

TEST(SvcKv, PercentileSinkReservoirIsDeterministicAndOrdered) {
  harness::PercentileSink sink(256, 5);
  for (std::uint64_t v = 1; v <= 10'000; ++v) sink.add(v);
  EXPECT_EQ(sink.count(), 10'000u);
  EXPECT_EQ(sink.max(), 10'000u);
  EXPECT_EQ(sink.sum(), 10'000ull * 10'001ull / 2);
  const std::uint64_t p50 = sink.p50();
  const std::uint64_t p99 = sink.p99();
  EXPECT_LE(p50, p99);
  // Uniform 1..10000: the sampled median lands well inside the middle
  // half, the p99 in the top quarter — loose bounds that hold for any
  // honest uniform reservoir, tight enough to catch a broken one.
  EXPECT_GT(p50, 2'500u);
  EXPECT_LT(p50, 7'500u);
  EXPECT_GT(p99, 7'500u);
  // Determinism: same cap/seed/stream -> identical quantiles.
  harness::PercentileSink again(256, 5);
  for (std::uint64_t v = 1; v <= 10'000; ++v) again.add(v);
  EXPECT_EQ(again.p50(), p50);
  EXPECT_EQ(again.p99(), p99);
}
