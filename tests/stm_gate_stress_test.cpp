// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Irrevocability-gate stress, run against BOTH gate layouts (legacy
// shared counter and the distributed per-slot array): irrevocable
// transactions interleave with eager and lazy updaters across >= 8
// logical threads.  The properties under test:
//
//   * the token holder always commits on its first attempt (its body
//     never re-executes),
//   * no updater commits while the gate is closed — observed from inside
//     the token holder, whose re-reads must see unchanged values,
//   * the gate is quiescent after the run (no leaked committer
//     registration in either layout),
//   * updaters parked at a closed gate are counted (gate_waits).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::GateScheme;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

void gate_stress(GateScheme gate, bool eager_updaters) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.gate_scheme = gate;
  rt.config.eager_writes = eager_updaters;
  rt.reset_stats();

  constexpr int kThreads = 9;  // 1 irrevocable + 8 updaters
  constexpr int kCells = 8;
  constexpr int kIrrevocableTxs = 20;
  constexpr int kUpdaterTxs = 60;
  std::vector<std::unique_ptr<stm::TVar<long>>> v;
  for (int i = 0; i < kCells; ++i)
    v.push_back(std::make_unique<stm::TVar<long>>(0));

  std::atomic<long> body_runs{0};
  long irrevocable_commits = 0;
  test::run_rr_sim(kThreads, [&](int id) {
    if (id == 0) {
      for (int i = 0; i < kIrrevocableTxs; ++i) {
        stm::atomically_irrevocable([&](stm::Tx& tx) {
          ++body_runs;
          long before[kCells];
          for (int k = 0; k < kCells; ++k) before[k] = v[k]->get(tx);
          vt::access(16);  // widen the closed-gate window
          // The token is held: nothing else may commit, so a re-read
          // observes exactly the values read before the window.
          for (int k = 0; k < kCells; ++k) {
            EXPECT_EQ(v[k]->get(tx), before[k])
                << "an updater committed while the gate was closed";
          }
          v[0]->set(tx, before[0] + 1);
        });
        ++irrevocable_commits;
      }
    } else {
      for (int i = 0; i < kUpdaterTxs; ++i) {
        stm::atomically([&](stm::Tx& tx) {
          const int c = (id + i) % kCells;
          v[c]->set(tx, v[c]->get(tx) + 1);
        });
      }
    }
  });

  EXPECT_EQ(body_runs.load(), irrevocable_commits)
      << "an irrevocable body re-executed (not a first-attempt commit)";
  EXPECT_EQ(body_runs.load(), kIrrevocableTxs);
  EXPECT_TRUE(rt.gate_quiescent()) << "a committer registration leaked";
  EXPECT_EQ(rt.irrevocable_owner(), -1);

  long total = 0;
  for (const auto& c : v) total += c->unsafe_load();
  EXPECT_EQ(total, kIrrevocableTxs + (kThreads - 1) * kUpdaterTxs);

  const stm::TxStats agg = rt.aggregate_stats();
  EXPECT_GT(agg.gate_waits, 0u)
      << "no updater ever parked behind the closed gate under stress";
  test::drain_memory();
}

}  // namespace

TEST(StmGateStress, DistributedGateLazyUpdaters) {
  gate_stress(GateScheme::kDistributed, /*eager_updaters=*/false);
}

TEST(StmGateStress, DistributedGateEagerUpdaters) {
  gate_stress(GateScheme::kDistributed, /*eager_updaters=*/true);
}

TEST(StmGateStress, CounterGateLazyUpdaters) {
  gate_stress(GateScheme::kCounter, /*eager_updaters=*/false);
}

TEST(StmGateStress, CounterGateEagerUpdaters) {
  gate_stress(GateScheme::kCounter, /*eager_updaters=*/true);
}

// A random-interleaving adversary over the distributed gate with two
// irrevocable threads competing for the token plus mixed updaters.
TEST(StmGateStress, TwoTokenHoldersUnderRandomScheduling) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.gate_scheme = GateScheme::kDistributed;

  auto x = std::make_unique<stm::TVar<long>>(0);
  std::atomic<long> body_runs{0};
  std::atomic<long> irrevocable_commits{0};
  test::run_random_sim(8, /*seed=*/1234, [&](int id) {
    for (int i = 0; i < 20; ++i) {
      if (id < 2) {
        stm::atomically_irrevocable([&](stm::Tx& tx) {
          ++body_runs;
          x->set(tx, x->get(tx) + 1);
        });
        ++irrevocable_commits;
      } else {
        stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
      }
    }
  });
  EXPECT_EQ(body_runs.load(), irrevocable_commits.load());
  EXPECT_EQ(x->unsafe_load(), 8 * 20);
  EXPECT_TRUE(rt.gate_quiescent());
  test::drain_memory();
}
