// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Composable blocking: stm::retry() and stm::or_else() (Harris et al.,
// the paper's citation [30]) — condition synchronization without
// condition variables, with branch rollback and union-of-reads wake-up.
#include <gtest/gtest.h>

#include <atomic>

#include "ds/tx_queue.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::Semantics;

// The blocking tests handshake instead of using tuned vt::access() delay
// loops: the consumer raises an atomic IN the transaction body right
// before calling retry(), and the producer waits for it.  The consumer's
// first attempt therefore provably sees the empty state and takes the
// park path, whatever the schedule or attempt length — the old magic
// counts ("200 accesses should outlast the park") encoded the same
// intent as a silent timing assumption.

TEST(StmRetry, BlocksUntilAWatchedLocationChanges) {
  auto flag = std::make_unique<stm::TVar<long>>(0);
  std::atomic<long> observed{-1};
  std::atomic<int> attempts{0};
  std::atomic<bool> parking{false};

  vt::Scheduler sched;
  sched.spawn([&](int) {  // consumer: waits for the flag
    const long v = stm::atomically([&](stm::Tx& tx) {
      ++attempts;
      const long f = flag->get(tx);
      if (f == 0) {
        parking = true;  // about to park on the watch set
        stm::retry(tx);
      }
      return f;
    });
    observed = v;
  });
  sched.spawn([&](int) {  // producer: fires only once the park is certain
    while (!parking.load()) vt::access();
    stm::atomically([&](stm::Tx& tx) { flag->set(tx, 42); });
  });
  sched.run();

  EXPECT_EQ(observed.load(), 42);
  EXPECT_GE(attempts.load(), 2) << "must have parked at least once";
}

TEST(StmRetry, RetryWithNothingReadIsAUsageError) {
  EXPECT_THROW(stm::atomically([&](stm::Tx& tx) { stm::retry(tx); }),
               stm::TxUsageError);
}

TEST(StmRetry, OrElseTakesTheFirstBranchWhenItSucceeds) {
  stm::TVar<long> x{7};
  const long v = stm::atomically([&](stm::Tx& tx) {
    return stm::or_else(
        tx, [&](stm::Tx& t) { return x.get(t); },
        [&](stm::Tx&) { return -1L; });
  });
  EXPECT_EQ(v, 7);
}

TEST(StmRetry, OrElseFallsToTheSecondBranchOnRetry) {
  stm::TVar<long> empty{0};
  stm::TVar<long> fallback{99};
  const long v = stm::atomically([&](stm::Tx& tx) {
    return stm::or_else(
        tx,
        [&](stm::Tx& t) -> long {
          if (empty.get(t) == 0) stm::retry(t);
          return empty.get(t);
        },
        [&](stm::Tx& t) { return fallback.get(t); });
  });
  EXPECT_EQ(v, 99);
}

TEST(StmRetry, OrElseUndoesTheFirstBranchsWrites) {
  stm::TVar<long> a{1};
  stm::TVar<long> b{2};
  stm::atomically([&](stm::Tx& tx) {
    stm::or_else(
        tx,
        [&](stm::Tx& t) {
          a.set(t, 100);  // must be rolled back
          b.set(t, 200);  // must be rolled back
          stm::retry(t);
        },
        [&](stm::Tx& t) { b.set(t, 20); });
  });
  EXPECT_EQ(a.unsafe_load(), 1) << "first branch's write leaked";
  EXPECT_EQ(b.unsafe_load(), 20);
}

TEST(StmRetry, OrElseUndoesOverwritesOfPreBranchWrites) {
  stm::TVar<long> x{1};
  stm::atomically([&](stm::Tx& tx) {
    x.set(tx, 10);  // pre-branch buffered write
    stm::or_else(
        tx,
        [&](stm::Tx& t) {
          x.set(t, 999);  // overwrites the buffer; must be undone
          stm::retry(t);
        },
        [&](stm::Tx& t) { EXPECT_EQ(x.get(t), 10); });
  });
  EXPECT_EQ(x.unsafe_load(), 10);
}

namespace {
struct CountedThing {
  static inline int live = 0;
  CountedThing() { ++live; }
  ~CountedThing() { --live; }
};
}  // namespace

TEST(StmRetry, OrElseDeletesBranchAllocations) {
  stm::TVar<long> dummy{0};
  const int live0 = CountedThing::live;
  stm::atomically([&](stm::Tx& tx) {
    (void)dummy.get(tx);
    stm::or_else(
        tx,
        [&](stm::Tx& t) {
          t.alloc<CountedThing>();
          stm::retry(t);
        },
        [&](stm::Tx&) {});
  });
  EXPECT_EQ(CountedThing::live, live0);
}

TEST(StmRetry, NestedOrElseComposesAlternatives) {
  ds::TxQueue q1, q2, q3;
  q3.enqueue(333);
  const long v = stm::atomically([&](stm::Tx& tx) {
    return stm::or_else(
        tx, [&](stm::Tx& t) { return q1.dequeue_or_retry(t); },
        [&](stm::Tx& t) {
          return stm::or_else(
              t, [&](stm::Tx& t2) { return q2.dequeue_or_retry(t2); },
              [&](stm::Tx& t2) { return q3.dequeue_or_retry(t2); });
        });
  });
  EXPECT_EQ(v, 333);
  test::drain_memory();
}

TEST(StmRetry, BothBranchesRetryWaitsOnTheUnion) {
  // Both branches block; the producer feeds only the FIRST branch's
  // source.  If the union of reads were not watched, the consumer would
  // sleep past the scheduler's brake.
  auto q1 = std::make_unique<ds::TxQueue>();
  auto q2 = std::make_unique<ds::TxQueue>();
  std::atomic<long> got{-1};
  std::atomic<bool> parking{false};

  vt::Scheduler::Options opts;
  opts.max_cycles = 4'000'000;  // brake in case the wake-up is broken
  vt::Scheduler sched(opts);
  sched.spawn([&](int) {
    got = stm::atomically([&](stm::Tx& tx) {
      return stm::or_else(
          tx, [&](stm::Tx& t) { return q1->dequeue_or_retry(t); },
          [&](stm::Tx& t) {
            parking = true;  // both branches empty: the union park follows
            return q2->dequeue_or_retry(t);
          });
    });
  });
  sched.spawn([&](int) {  // fires only after both branches came up empty
    while (!parking.load()) vt::access();
    q1->enqueue(11);
  });
  sched.run();
  EXPECT_FALSE(sched.hit_cycle_limit());
  EXPECT_EQ(got.load(), 11);
  test::drain_memory();
}

TEST(StmRetry, RetryInsideNestedTransactionParksTheWholeFlat) {
  auto flag = std::make_unique<stm::TVar<long>>(0);
  std::atomic<long> result{-1};
  std::atomic<bool> parking{false};
  vt::Scheduler sched;
  sched.spawn([&](int) {
    result = stm::atomically([&](stm::Tx&) {
      // Nested component that blocks: the flat transaction parks.
      return stm::atomically([&](stm::Tx& inner) {
        const long f = flag->get(inner);
        if (f == 0) {
          parking = true;
          stm::retry(inner);
        }
        return f;
      });
    });
  });
  sched.spawn([&](int) {
    while (!parking.load()) vt::access();
    stm::atomically([&](stm::Tx& tx) { flag->set(tx, 5); });
  });
  sched.run();
  EXPECT_EQ(result.load(), 5);
}

TEST(StmRetry, ElasticTransactionsCanRetryOnTheWindow) {
  auto flag = std::make_unique<stm::TVar<long>>(0);
  std::atomic<long> result{-1};
  std::atomic<bool> parking{false};
  vt::Scheduler sched;
  sched.spawn([&](int) {
    result = stm::atomically(Semantics::kElastic, [&](stm::Tx& tx) {
      const long f = flag->get(tx);
      if (f == 0) {
        parking = true;
        stm::retry(tx);  // watch set = the elastic window
      }
      return f;
    });
  });
  sched.spawn([&](int) {
    while (!parking.load()) vt::access();
    stm::atomically([&](stm::Tx& tx) { flag->set(tx, 9); });
  });
  sched.run();
  EXPECT_EQ(result.load(), 9);
}

TEST(StmRetry, ProducerConsumerPipelineLosesNothing) {
  for (std::uint64_t seed : {71u, 72u, 73u}) {
    auto q = std::make_unique<ds::TxQueue>();
    constexpr int kItems = 60;
    std::atomic<long> sum{0};
    std::atomic<int> taken{0};

    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kRandom;
    opts.seed = seed;
    vt::Scheduler sched(opts);
    for (int p = 0; p < 2; ++p) {
      sched.spawn([&, p](int) {
        for (int i = 0; i < kItems / 2; ++i)
          q->enqueue(p * 1000 + i);
      });
    }
    for (int c = 0; c < 3; ++c) {
      sched.spawn([&](int) {
        // Each consumer takes a fixed share; blocking dequeue keeps them
        // correct even when they outrun the producers.
        for (int i = 0; i < kItems / 3; ++i) {
          const long v = stm::atomically(
              [&](stm::Tx& tx) { return q->dequeue_or_retry(tx); });
          sum += v;
          ++taken;
        }
      });
    }
    sched.run();
    EXPECT_EQ(taken.load(), kItems) << "seed " << seed;
    long expect = 0;
    for (int p = 0; p < 2; ++p)
      for (int i = 0; i < kItems / 2; ++i) expect += p * 1000 + i;
    EXPECT_EQ(sum.load(), expect) << "seed " << seed;
    test::drain_memory();
  }
}
