// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Snapshot semantics: multiversion reads, the two-version depth limit,
// consistency of whole-structure snapshots against concurrent updates.
#include <gtest/gtest.h>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::AbortReason;
using stm::AbortTx;
using stm::Semantics;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

template <typename F>
AbortReason expect_abort(stm::Tx& tx, F&& body) {
  try {
    body(tx);
  } catch (const AbortTx& a) {
    tx.rollback(a.reason);
    return a.reason;
  }
  ADD_FAILURE() << "expected the transaction to abort";
  tx.rollback(AbortReason::kExplicit);
  return AbortReason::kExplicit;
}

}  // namespace

TEST(StmSnapshot, ReadsValueCurrentAtStart) {
  stm::TVar<long> x{1};
  auto& rt = stm::Runtime::instance();
  stm::Tx& snap = rt.tx_for_slot(60);
  stm::Tx& upd = rt.tx_for_slot(61);

  snap.begin(Semantics::kSnapshot, 0);
  upd.begin(Semantics::kClassic, 0);
  x.set(upd, 2);
  upd.commit();

  // The update committed after the snapshot's bound: the snapshot must
  // read the OLD value from the backup version.
  EXPECT_EQ(x.get(snap), 1);
  snap.commit();
  EXPECT_GE(rt.aggregate_stats().snapshot_old_reads, 1u);
  EXPECT_EQ(x.unsafe_load(), 2);
}

TEST(StmSnapshot, AbortsWhenHistoryTooShallow) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.snapshot_depth = 2;  // pin the paper pair

  stm::TVar<long> x{1};
  auto& rt = stm::Runtime::instance();
  stm::Tx& snap = rt.tx_for_slot(60);
  stm::Tx& upd = rt.tx_for_slot(61);

  snap.begin(Semantics::kSnapshot, 0);
  for (int i = 0; i < 2; ++i) {  // two updates: both versions too new
    upd.begin(Semantics::kClassic, 0);
    x.set(upd, 10 + i);
    upd.commit();
  }

  const AbortReason r =
      expect_abort(snap, [&](stm::Tx& tx) { (void)x.get(tx); });
  EXPECT_EQ(r, AbortReason::kSnapshotTooOld);
}

TEST(StmSnapshot, OneVersionAblationStarvesSnapshots) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.maintain_old_versions = false;

  stm::TVar<long> x{1};
  auto& rt = stm::Runtime::instance();
  stm::Tx& snap = rt.tx_for_slot(60);
  stm::Tx& upd = rt.tx_for_slot(61);

  snap.begin(Semantics::kSnapshot, 0);
  upd.begin(Semantics::kClassic, 0);
  x.set(upd, 2);
  upd.commit();

  // Without the backup pair even a single concurrent update aborts the
  // snapshot — the ablation Fig. 9 implicitly argues against.
  const AbortReason r =
      expect_abort(snap, [&](stm::Tx& tx) { (void)x.get(tx); });
  EXPECT_EQ(r, AbortReason::kSnapshotTooOld);
}

TEST(StmSnapshot, DeepRingRescuesPastDepthTwo) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.snapshot_depth = 4;  // three backups

  stm::TVar<long> x{1};
  auto& rt = stm::Runtime::instance();
  stm::Tx& snap = rt.tx_for_slot(60);
  stm::Tx& upd = rt.tx_for_slot(61);

  snap.begin(Semantics::kSnapshot, 0);
  for (int i = 0; i < 3; ++i) {  // three overwrites: depth 2 would abort
    upd.begin(Semantics::kClassic, 0);
    x.set(upd, 10 + i);
    upd.commit();
  }
  const std::uint64_t deep_before = snap.stats().snapshot_ring_hits;
  EXPECT_EQ(x.get(snap), 1) << "deepest ring entry should hold the bound";
  snap.commit();
  // The serve came from an entry older than the newest kept backup — the
  // one-backup paper scheme could not have made it.
  EXPECT_GT(snap.stats().snapshot_ring_hits, deep_before);
}

TEST(StmSnapshot, DeepRingExhaustsAtConfiguredDepth) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.snapshot_depth = 4;

  stm::TVar<long> x{1};
  auto& rt = stm::Runtime::instance();
  stm::Tx& snap = rt.tx_for_slot(60);
  stm::Tx& upd = rt.tx_for_slot(61);

  snap.begin(Semantics::kSnapshot, 0);
  for (int i = 0; i < 4; ++i) {  // one more than the ring keeps
    upd.begin(Semantics::kClassic, 0);
    x.set(upd, 10 + i);
    upd.commit();
  }
  const AbortReason r =
      expect_abort(snap, [&](stm::Tx& tx) { (void)x.get(tx); });
  EXPECT_EQ(r, AbortReason::kSnapshotTooOld);
}

TEST(StmSnapshot, RingWraparoundServesNewestBackup) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.snapshot_depth = 4;

  stm::TVar<long> x{0};
  auto& rt = stm::Runtime::instance();
  stm::Tx& snap = rt.tx_for_slot(60);
  stm::Tx& upd = rt.tx_for_slot(61);

  // Ten commits wrap the three-slot ring head several times before the
  // snapshot starts; the walk must still pick the newest surviving entry
  // under the bound, not whatever sits first in slot order.
  for (int i = 1; i <= 10; ++i) {
    upd.begin(Semantics::kClassic, 0);
    x.set(upd, i);
    upd.commit();
  }
  snap.begin(Semantics::kSnapshot, 0);
  upd.begin(Semantics::kClassic, 0);
  x.set(upd, 99);
  upd.commit();
  EXPECT_EQ(x.get(snap), 10);
  snap.commit();
}

TEST(StmSnapshot, DepthOneKeepsNoHistory) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.snapshot_depth = 1;  // zero backups

  stm::TVar<long> x{1};
  auto& rt = stm::Runtime::instance();
  stm::Tx& snap = rt.tx_for_slot(60);
  stm::Tx& upd = rt.tx_for_slot(61);

  snap.begin(Semantics::kSnapshot, 0);
  upd.begin(Semantics::kClassic, 0);
  x.set(upd, 2);
  upd.commit();

  // Depth 1 is the one-version ablation: any concurrent overwrite starves
  // the snapshot.
  const AbortReason r =
      expect_abort(snap, [&](stm::Tx& tx) { (void)x.get(tx); });
  EXPECT_EQ(r, AbortReason::kSnapshotTooOld);
}

TEST(StmSnapshot, MixedReadsAreMutuallyConsistent) {
  // x and y updated atomically; a snapshot spanning an update must see
  // both-old or both-new, never a mix.
  stm::TVar<long> x{0};
  stm::TVar<long> y{0};
  auto& rt = stm::Runtime::instance();
  stm::Tx& snap = rt.tx_for_slot(60);
  stm::Tx& upd = rt.tx_for_slot(61);

  snap.begin(Semantics::kSnapshot, 0);
  const long x0 = x.get(snap);

  upd.begin(Semantics::kClassic, 0);
  x.set(upd, 1);
  y.set(upd, 1);
  upd.commit();

  const long y0 = y.get(snap);
  snap.commit();
  EXPECT_EQ(x0, 0);
  EXPECT_EQ(y0, 0) << "snapshot mixed old x with new y";
}

TEST(StmSnapshot, SizeIsAtomicAgainstConcurrentUpdates) {
  // The paper's size() claim: snapshot sizes taken while adders/removers
  // run must equal initial + (net updates committed at some instant) —
  // and in this controlled setup, sizes must always be one of the values
  // the set actually passed through.
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    auto list = std::make_unique<ds::TxList>(
        ds::TxList::Options{Semantics::kElastic, Semantics::kSnapshot});
    for (long k = 0; k < 40; k += 2) ASSERT_TRUE(list->add(k));  // 20 elems

    std::atomic<bool> bad{false};
    test::run_random_sim(4, seed, [&](int id) {
      if (id == 0) {  // snapshot reader
        for (int i = 0; i < 25; ++i) {
          const long s = list->size();
          // 20 initial; 3 adder/remover threads change it by ±1 each op.
          if (s < 5 || s > 40) bad.store(true);
        }
      } else {  // updaters: add then remove a private key repeatedly
        const long k = 100 + id;  // disjoint keys: size flips by one
        for (int i = 0; i < 40; ++i) {
          list->add(k);
          list->remove(k);
        }
      }
    });
    EXPECT_FALSE(bad.load()) << "seed " << seed;
    EXPECT_EQ(list->unsafe_size(), 20);
    test::drain_memory();
  }
}

TEST(StmSnapshot, SnapshotSizeNeverAbortsPermanently) {
  // Stronger shape check: with updaters hammering the list, snapshot
  // size() operations must keep committing (they may retry internally).
  auto list = std::make_unique<ds::TxList>(
      ds::TxList::Options{Semantics::kElastic, Semantics::kSnapshot});
  for (long k = 0; k < 30; ++k) ASSERT_TRUE(list->add(k));

  stm::Runtime::instance().reset_stats();
  std::atomic<long> sizes_done{0};
  test::run_rr_sim(4, [&](int id) {
    if (id == 0) {
      for (int i = 0; i < 30; ++i) {
        (void)list->size();
        ++sizes_done;
      }
    } else {
      for (int i = 0; i < 60; ++i) {
        list->add(200 + id * 100 + (i % 7));
        list->remove(200 + id * 100 + (i % 7));
      }
    }
  });
  EXPECT_EQ(sizes_done.load(), 30);
  const auto s = stm::Runtime::instance().aggregate_stats();
  EXPECT_EQ(s.commits_by_sem[static_cast<int>(Semantics::kSnapshot)], 30u);
  test::drain_memory();
}
