// The Sec. 3.1 expressiveness argument, mechanized: the hand-over-hand
// lock program P guarantees atomicity(rx,ry) and atomicity(ry,rz) but not
// atomicity(rx,rz); the transaction Pt guarantees the transitive closure
// and cannot express less.
#include <gtest/gtest.h>

#include "sched/atomicity.hpp"

using namespace demotx::sched;

namespace {

// P = lock(x) r(x) lock(y) r(y) unlock(x) lock(z) r(z) unlock(y) unlock(z)
Program paper_program_p() {
  return {lk(0, 0), rd(0, 0), lk(0, 1), rd(0, 1), ul(0, 0),
          lk(0, 2), rd(0, 2), ul(0, 1), ul(0, 2)};
}

}  // namespace

TEST(Atomicity, LockProgramGuaranteesChainOnly) {
  const Program p = paper_program_p();
  const AtomicityRelation rel = lock_atomicity(p);
  // Accesses: 0 = r(x), 1 = r(y), 2 = r(z).
  EXPECT_TRUE(rel.count({0, 1})) << "atomicity(r(x), r(y))";
  EXPECT_TRUE(rel.count({1, 2})) << "atomicity(r(y), r(z))";
  EXPECT_FALSE(rel.count({0, 2})) << "NOT atomicity(r(x), r(z))";
}

TEST(Atomicity, LockRelationIsNotTransitivelyClosed) {
  const Program p = paper_program_p();
  const AtomicityRelation rel = lock_atomicity(p);
  EXPECT_FALSE(is_transitively_closed(rel, access_events(p).size()));
}

TEST(Atomicity, TransactionGuaranteesTheClosure) {
  const Program p = paper_program_p();
  const AtomicityRelation lock_rel = lock_atomicity(p);
  const AtomicityRelation tx_rel = transaction_atomicity(p);
  EXPECT_EQ(tx_rel, transitive_closure(lock_rel, access_events(p).size()))
      << "the transaction's guarantee is exactly the closure of the "
         "lock program's";
  EXPECT_TRUE(is_transitively_closed(tx_rel, access_events(p).size()));
  EXPECT_TRUE(tx_rel.count({0, 2}));
}

TEST(Atomicity, SingleLockGuaranteesOnlyPairsInvolvingItsLocation) {
  // lock(x) r(x) r(y) r(z) unlock(x): under the paper's definition the
  // held lock on x makes every access in the interval atomic *with the
  // access to x* — but (r(y), r(z)) is not guaranteed: another process
  // may write y between them, x's lock does not protect y or z.
  const Program p = {lk(0, 0), rd(0, 0), rd(0, 1), rd(0, 2), ul(0, 0)};
  const AtomicityRelation rel = lock_atomicity(p);
  EXPECT_TRUE(rel.count({0, 1}));
  EXPECT_TRUE(rel.count({0, 2}));
  EXPECT_FALSE(rel.count({1, 2}));
}

TEST(Atomicity, LockingEveryLocationGuaranteesEverything) {
  // Holding x, y and z across all three reads is the lock-based
  // equivalent of the transaction block.
  const Program p = {lk(0, 0), lk(0, 1), lk(0, 2), rd(0, 0), rd(0, 1),
                     rd(0, 2), ul(0, 0), ul(0, 1), ul(0, 2)};
  const AtomicityRelation rel = lock_atomicity(p);
  EXPECT_EQ(rel, transaction_atomicity(p));
}

TEST(Atomicity, DisjointLocksGuaranteeNothingAcross) {
  // lock(x) r(x) unlock(x) lock(y) r(y) unlock(y)
  const Program p = {lk(0, 0), rd(0, 0), ul(0, 0),
                     lk(0, 1), rd(0, 1), ul(0, 1)};
  const AtomicityRelation rel = lock_atomicity(p);
  EXPECT_TRUE(rel.empty());
}

TEST(Atomicity, UnreleasedLockExtendsToProgramEnd) {
  // lock(x) r(x) ... r(y): interval open to the end covers both.
  const Program p = {lk(0, 0), rd(0, 0), rd(0, 1)};
  const AtomicityRelation rel = lock_atomicity(p);
  EXPECT_TRUE(rel.count({0, 1}));
}

TEST(Atomicity, IntervalMustProtectATouchedLocation) {
  // lock(u) r(x) r(y) unlock(u): the held lock protects an unrelated
  // location, so it guarantees nothing about x and y.
  const Program p = {lk(0, 9), rd(0, 0), rd(0, 1), ul(0, 9)};
  const AtomicityRelation rel = lock_atomicity(p);
  EXPECT_TRUE(rel.empty());
}

TEST(Atomicity, ToStringLabelsAccesses) {
  const Program p = paper_program_p();
  const std::string s = to_string(lock_atomicity(p), p);
  EXPECT_NE(s.find("r(x)"), std::string::npos);
  EXPECT_NE(s.find("r(y)"), std::string::npos);
}
