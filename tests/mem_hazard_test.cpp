// Hazard pointers: publication protects nodes from reclamation; cleared
// slots allow it; the protect() re-validation loop returns a safe pointer.
#include "mem/hazard.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "vt/scheduler.hpp"

using namespace demotx;

namespace {

struct Canary {
  explicit Canary(long v) : value(v) {}
  ~Canary() { value = kDead; }
  static constexpr long kDead = 0x0badf00dL;
  long value;
};

}  // namespace

TEST(Hazard, DrainFreesUnprotectedNodes) {
  auto& dom = mem::HazardDomain::instance();
  const auto f0 = dom.freed_count();
  for (int i = 0; i < 10; ++i) dom.retire(new Canary(i));
  dom.drain();
  EXPECT_EQ(dom.freed_count() - f0, 10u);
}

namespace {
struct FlagOnDelete {
  explicit FlagOnDelete(bool* f) : flag(f) {}
  ~FlagOnDelete() { *flag = true; }
  bool* flag;
};
}  // namespace

TEST(Hazard, PublishedPointerSurvivesScans) {
  auto& dom = mem::HazardDomain::instance();
  bool deleted = false;
  auto* c = new FlagOnDelete(&deleted);
  dom.publish(0, c);
  dom.retire(c);
  // Push far past the scan threshold; c must survive every scan.
  for (int i = 0; i < 300; ++i) dom.retire(new Canary(i));
  EXPECT_FALSE(deleted);
  dom.clear(0);
  dom.drain();
  EXPECT_TRUE(deleted);  // reclaimed once unprotected
}

TEST(Hazard, ProtectValidatesAgainstTheSource) {
  auto& dom = mem::HazardDomain::instance();
  std::atomic<Canary*> src{new Canary(1)};
  mem::HazardDomain::Holder h;
  Canary* p = h.protect(0, src);
  EXPECT_EQ(p, src.load());
  EXPECT_EQ(p->value, 1);
  delete src.load();
  dom.drain();
}

TEST(Hazard, ConcurrentSwapAndReadIsSafe) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    std::atomic<Canary*> shared{new Canary(0)};
    std::atomic<bool> bad{false};
    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kRandom;
    opts.seed = seed;
    vt::Scheduler sched(opts);
    sched.spawn([&](int) {  // writer
      for (long i = 1; i <= 300; ++i) {
        auto* fresh = new Canary(i);
        vt::access();
        Canary* old = shared.exchange(fresh, std::memory_order_acq_rel);
        mem::HazardDomain::instance().retire(old);
      }
    });
    for (int r = 0; r < 3; ++r) {
      sched.spawn([&](int) {  // readers
        for (int i = 0; i < 400; ++i) {
          mem::HazardDomain::Holder h;
          Canary* c = h.protect(0, shared);
          vt::access();
          if (c->value == Canary::kDead) bad.store(true);
        }
      });
    }
    sched.run();
    EXPECT_FALSE(bad.load()) << "seed " << seed;
    delete shared.load();
    mem::HazardDomain::instance().drain();
  }
}
