// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Bounded-spin stop-observation regressions (ISSUE 9 satellite): the
// snapshot and object-stripe reader spins wait on another fiber's lock
// release, so per the vt contract (context.hpp) they must poll
// vt::stop_requested() — after a scheduler stop or injected crash
// (DEMOTX_CRASH_AT) the lock holder may never be scheduled again.  An
// UNPINNED spinner was rescued incidentally by the FiberStopped unwind
// inside vt::access; a PINNED spinner (ScopedCritical armed, as in the
// commit path these brackets also serve) kept burning its full spin
// budget against a dead holder.  Pre-fix, each test below burns the
// whole budget (>= 128 or >= 1024 virtual cycles) and the snapshot read
// aborts kLockedByOther; post-fix every spin observes the stop within a
// few polls.
#include <gtest/gtest.h>

#include <cstdint>

#include "stm/objstm.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;
using stm::AbortReason;
using stm::AbortTx;
using stm::Semantics;

namespace {

// Upper bound on "prompt": the stop polls run every 8 spins, so a fixed
// handful of cycles covers them; the pre-fix budgets (128 polite / 1024
// bounded spins, one virtual cycle each) sail far past it.
constexpr std::uint64_t kPromptCycles = 100;

// Fiber 0 body: grab the given lock word as a foreign committer (slot 0)
// would, then park until the stop unwinds us — the "holder that never
// drains" every crash-in-spin schedule contains.
void park_holding(std::atomic<std::uint64_t>& lock) {
  lock.store(stm::lockword::make_locked(0), std::memory_order_release);
  for (;;) vt::access();  // FiberStopped unwinds us after the stop
}

}  // namespace

TEST(StmSpinStop, PinnedSnapshotCellSpinObservesStop) {
  auto& rt = stm::Runtime::instance();
  stm::TVar<long> x{1};
  bool aborted = false;
  AbortReason reason = AbortReason::kExplicit;
  std::uint64_t spin_cycles = 0;

  vt::Scheduler sched;
  sched.spawn([&](int) { park_holding(x.cell().vlock); });
  sched.spawn([&](int) {
    vt::access();  // let the holder take the lock first (round-robin)
    stm::Tx& tx = rt.tx_for_slot(1);
    tx.begin(Semantics::kSnapshot, 0);
    vt::ScopedCritical pin(true);
    sched.request_stop();
    const std::uint64_t t0 = vt::sim_now();
    try {
      (void)x.get(tx);
      ADD_FAILURE() << "snapshot read of a dead holder's lock returned";
    } catch (const AbortTx& a) {
      aborted = true;
      reason = a.reason;
      spin_cycles = vt::sim_now() - t0;
      tx.rollback(a.reason);
    }
    pin.disarm();
  });
  sched.run();

  EXPECT_TRUE(aborted);
  // Pre-fix: 1024 spins then kLockedByOther.  The stop poll must fire
  // first and surface as a kill.
  EXPECT_EQ(reason, AbortReason::kKilled);
  EXPECT_LT(spin_cycles, kPromptCycles);
}

TEST(StmSpinStop, PinnedObjUpdateSpinObservesStop) {
  auto& rt = stm::Runtime::instance();
  stm::ObjSet set;
  const std::uint64_t key = 5;
  bool aborted = false;
  std::uint64_t spin_cycles = 0;

  vt::Scheduler sched;
  sched.spawn([&](int) { park_holding(set.stripe_for(key).lock); });
  sched.spawn([&](int) {
    vt::access();
    stm::Tx& tx = rt.tx_for_slot(1);
    tx.begin(Semantics::kClassic, 0);
    vt::ScopedCritical pin(true);
    sched.request_stop();
    const std::uint64_t t0 = vt::sim_now();
    try {
      (void)tx.obj_contains(set, key);
      ADD_FAILURE() << "update-tier scan of a dead holder's stripe returned";
    } catch (const AbortTx& a) {
      aborted = true;
      spin_cycles = vt::sim_now() - t0;
      tx.rollback(a.reason);
    }
    pin.disarm();
  });
  sched.run();

  EXPECT_TRUE(aborted);
  // Pre-fix: the full 128-spin politeness budget burns before the CM
  // arbitrates — well past the prompt bound.
  EXPECT_LT(spin_cycles, kPromptCycles);
}

TEST(StmSpinStop, PinnedSnapshotObjSpinObservesStop) {
  auto& rt = stm::Runtime::instance();
  stm::ObjSet set;
  const std::uint64_t key = 9;
  bool aborted = false;
  std::uint64_t spin_cycles = 0;

  vt::Scheduler sched;
  sched.spawn([&](int) { park_holding(set.stripe_for(key).lock); });
  sched.spawn([&](int) {
    vt::access();
    stm::Tx& tx = rt.tx_for_slot(1);
    tx.begin(Semantics::kSnapshot, 0);
    vt::ScopedCritical pin(true);
    sched.request_stop();
    const std::uint64_t t0 = vt::sim_now();
    try {
      (void)tx.obj_contains(set, key);
      ADD_FAILURE() << "snapshot scan of a dead holder's stripe returned";
    } catch (const AbortTx& a) {
      aborted = true;
      spin_cycles = vt::sim_now() - t0;
      tx.rollback(a.reason);
    }
    pin.disarm();
  });
  sched.run();

  EXPECT_TRUE(aborted);
  // Pre-fix: the full 1024-spin bounded bracket burns before failing.
  EXPECT_LT(spin_cycles, kPromptCycles);
}
