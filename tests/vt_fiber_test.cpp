// Fiber mechanics: creation, resume/yield round trips, completion, stack
// isolation, early termination via FiberStopped.
#include "vt/fiber.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using demotx::vt::Fiber;
using demotx::vt::FiberStopped;

TEST(Fiber, RunsToCompletionOnFirstResume) {
  int hits = 0;
  Fiber f([&] { ++hits; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(hits, 1);
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  std::vector<int> trace;
  Fiber* self = nullptr;
  Fiber f([&] {
    trace.push_back(1);
    self->yield();
    trace.push_back(2);
    self->yield();
    trace.push_back(3);
  });
  self = &f;
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1}));
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, RunningReportsCurrentFiber) {
  EXPECT_EQ(Fiber::running(), nullptr);
  Fiber* observed = reinterpret_cast<Fiber*>(1);
  Fiber f([&] { observed = Fiber::running(); });
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(Fiber::running(), nullptr);
}

TEST(Fiber, NestedResumeOfAnotherFiber) {
  std::vector<std::string> trace;
  Fiber inner([&] { trace.push_back("inner"); });
  Fiber outer([&] {
    trace.push_back("outer-pre");
    inner.resume();
    trace.push_back("outer-post");
  });
  outer.resume();
  EXPECT_EQ(trace, (std::vector<std::string>{"outer-pre", "inner",
                                             "outer-post"}));
  EXPECT_TRUE(inner.finished());
  EXPECT_TRUE(outer.finished());
}

TEST(Fiber, ManyFibersInterleaved) {
  constexpr int kN = 64;
  constexpr int kSteps = 10;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> counters(kN, 0);
  std::vector<Fiber*> raw(kN);
  for (int i = 0; i < kN; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&, i] {
      for (int s = 0; s < kSteps; ++s) {
        ++counters[i];
        raw[i]->yield();
      }
    }));
    raw[i] = fibers.back().get();
  }
  bool live = true;
  while (live) {
    live = false;
    for (auto& f : fibers)
      if (!f->finished()) {
        f->resume();
        live = true;
      }
  }
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counters[i], kSteps);
}

TEST(Fiber, LocalStateSurvivesYields) {
  // Deep-ish stack usage across yields: the saved context must preserve
  // locals below many frames.
  long result = 0;
  Fiber* self = nullptr;
  std::function<long(int)> rec = [&](int depth) -> long {
    volatile long local = depth * 3;
    if (depth == 0) {
      self->yield();
      return 1;
    }
    const long sub = rec(depth - 1);
    return sub + local;
  };
  Fiber f([&] { result = rec(50); });
  self = &f;
  f.resume();  // suspended at depth 0
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  long expect = 1;
  for (int d = 1; d <= 50; ++d) expect += d * 3;
  EXPECT_EQ(result, expect);
}

TEST(Fiber, FiberStoppedUnwindsWithRaii) {
  struct Flag {
    bool* b;
    ~Flag() { *b = true; }
  };
  bool destroyed = false;
  Fiber* self = nullptr;
  Fiber f([&] {
    Flag flag{&destroyed};
    self->yield();
    throw FiberStopped{};  // normally thrown from vt::access()
  });
  self = &f;
  f.resume();
  EXPECT_FALSE(destroyed);
  f.resume();  // runs into the throw; the fiber catches and finishes
  EXPECT_TRUE(f.finished());
  EXPECT_TRUE(destroyed);
}
