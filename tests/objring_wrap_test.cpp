// demotx:expert-file: test suite: exercises the expert tier (snapshot-depth overrides, DFS exploration) by design
// ObjRing wrap-exhaustion property: the objring-wrap workload pushes
// more generations through a key's version ring than the ring keeps
// (depth + 2 flips between the snapshot reader's rv pin and its walk),
// so on the interleavings where the walk arrives after its pinned
// generation has been overwritten the reader must fall back via
// kSnapshotRace — never serve a stale ring entry.  Bounded-exhaustive
// DFS covers every 2-preemption interleaving at ring depths 2, 4 and 8;
// the workload invariant catches a stale value, and the abort-reason
// counter proves the fallback path actually fired (the property is not
// vacuously true).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/explore.hpp"
#include "stm/stm.hpp"

using namespace demotx;

namespace {

// Scoped override of the process-wide STM config (tests run with no
// transaction in flight around the override).
class ConfigOverride {
 public:
  ConfigOverride() : saved_(stm::Runtime::instance().config) {}
  ~ConfigOverride() { stm::Runtime::instance().config = saved_; }
  stm::Config& config() { return stm::Runtime::instance().config; }

 private:
  stm::Config saved_;
};

std::uint64_t snapshot_race_aborts() {
  return stm::Runtime::instance().aggregate_stats().aborts_by_reason
      [static_cast<int>(stm::AbortReason::kSnapshotRace)];
}

}  // namespace

TEST(ObjRingWrap, DfsCleanAndRaceFallbackFiresAcrossDepths) {
  std::uint64_t races_total = 0;
  for (const std::size_t depth : {2u, 4u, 8u}) {
    ConfigOverride ov;
    ov.config().snapshot_depth = depth;

    stm::Runtime::instance().reset_stats();
    check::ExploreOptions opts;
    opts.workload = "objring-wrap";
    opts.strategy = "dfs";
    opts.dfs_preemptions = 2;
    opts.schedules = 400;
    opts.seed = 1;
    const check::ExploreResult res = check::explore(opts);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_FALSE(res.found_violation)
        << "depth " << depth << ": " << res.what;
    EXPECT_GT(res.schedules_run, 20u) << "depth " << depth;
    const std::uint64_t races = snapshot_race_aborts();
    races_total += races;
  }
  // At least one explored interleaving per sweep must have exhausted a
  // wrapped ring and taken the kSnapshotRace fallback; a sweep where the
  // race never fires proves nothing about staleness.
  EXPECT_GT(races_total, 0u);
}

TEST(ObjRingWrap, RandomSweepCleanAtMaxDepth) {
  // The depth-8 ring under a random adversary: wider coverage of the
  // wrap window positions than the bounded DFS, same property.
  ConfigOverride ov;
  ov.config().snapshot_depth = 8;
  stm::Runtime::instance().reset_stats();
  check::ExploreOptions opts;
  opts.workload = "objring-wrap";
  opts.strategy = "random";
  opts.schedules = 400;
  opts.seed = 11;
  const check::ExploreResult res = check::explore(opts);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.found_violation) << res.what;
}
