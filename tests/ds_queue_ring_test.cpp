// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Deep version-ring property test for the transactional queue: fast
// producer/consumer churn keeps BOTH queue indices moving while snapshot
// readers observe the length.  Under DEMOTX_SNAPSHOT_DEPTH=4/8 the
// readers are legitimately served from ring entries several generations
// deep (and under DEMOTX_OBJECT_OPS=1 from the object head/tail/size
// rings); the properties — a length that never tears within one
// snapshot, never leaves the feasible range, and element conservation at
// quiescence — must hold at every depth and in both representations.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "ds/tx_queue.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;

TEST(TxQueueRing, SnapshotSizeStableUnderChurn) {
  for (std::uint64_t seed : {71u, 72u, 73u}) {
    auto q = std::make_unique<ds::TxQueue>();
    constexpr int kInitial = 8;
    constexpr int kChurners = 2;
    constexpr int kPairs = 25;
    for (int i = 0; i < kInitial; ++i) q->enqueue(i);
    std::atomic<bool> torn{false};
    std::atomic<bool> out_of_range{false};
    std::atomic<long> consumed{0};

    test::run_random_sim(kChurners + 2, seed, [&](int id) {
      if (id < kChurners) {
        // Enqueue/dequeue pairs: head AND tail advance every iteration,
        // so a slow snapshot quickly needs entries behind the newest.
        for (int i = 0; i < kPairs; ++i) {
          q->enqueue(id * 1000 + i);
          if (q->dequeue()) ++consumed;
        }
      } else {
        for (int i = 0; i < 15; ++i) {
          const long s = stm::atomically(
              stm::Semantics::kSnapshot, [&](stm::Tx& tx) {
                const long a = q->size(tx);
                const long b = q->size(tx);
                if (a != b) torn.store(true, std::memory_order_relaxed);
                return a;
              });
          if (s < 0 || s > kInitial + kChurners * kPairs)
            out_of_range.store(true, std::memory_order_relaxed);
        }
      }
    });

    EXPECT_FALSE(torn.load()) << "seed " << seed;
    EXPECT_FALSE(out_of_range.load()) << "seed " << seed;
    long drained = 0;
    while (q->dequeue()) ++drained;
    EXPECT_EQ(consumed.load() + drained, kInitial + kChurners * kPairs)
        << "seed " << seed;
    test::drain_memory();
  }
}

TEST(TxQueueRing, SnapshotSurvivesRingWraparound) {
  // One writer commits more generations than the deepest configured ring
  // keeps while round-robin scheduling wedges the snapshot mid-read: the
  // reader either completes at its bound (served from the ring) or
  // retries at a fresh bound — it must never return a torn pair.
  auto q = std::make_unique<ds::TxQueue>();
  for (int i = 0; i < 4; ++i) q->enqueue(i);
  std::atomic<bool> torn{false};
  test::run_rr_sim(2, [&](int id) {
    if (id == 0) {
      for (int g = 0; g < 12; ++g) {
        q->enqueue(100 + g);
        (void)q->dequeue();
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        stm::atomically(stm::Semantics::kSnapshot, [&](stm::Tx& tx) {
          const long a = q->size(tx);
          const long b = q->size(tx);
          if (a != b) torn.store(true, std::memory_order_relaxed);
          return a;
        });
      }
    }
  });
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(q->unsafe_size(), 4);
  test::drain_memory();
}
