// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Sharded commit-clock (epoch/slice hybrid) properties.
//
// Under the sharded scheme a committer's timestamp comes from its own
// shard's sequence word under a coarse shared epoch, so grants from
// different shards within one epoch carry NO mutual order.  What must
// still hold — and what these tests check across simulated interleavings:
//
//   * per-thread commit timestamps stay strictly increasing (the grant
//     must exceed the committer's rv and every version it overwrites),
//   * the epoch rolls over when a shard exhausts its slice quota, and
//     rolled-over grants still order correctly against pre-rollover ones,
//   * reads that cross shards (a reader validating values published by
//     writers on different shards) never observe effects out of their
//     dependency order,
//   * begin-time bounds are FRESH: a snapshot started after a commit
//     retired must observe it (the epoch floor alone can trail same-epoch
//     grants),
//   * the shard-skew / epoch-bump counters actually count.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::ClockScheme;
using stm::Semantics;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

std::uint64_t my_last_wv() {
  return stm::Runtime::instance().tx_for_current_thread().last_commit_version();
}

}  // namespace

TEST(StmSharded, DisjointCommitsStayMonotonicAcrossEpochRollover) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kSharded;
  rt.config.clock_epoch_quota = 2;  // force rollovers every other grant
  rt.reset_stats();

  constexpr int kThreads = 8;
  constexpr int kTxs = 50;
  std::vector<std::unique_ptr<stm::TVar<long>>> v;
  for (int i = 0; i < kThreads; ++i)
    v.push_back(std::make_unique<stm::TVar<long>>(0));
  std::vector<std::vector<std::uint64_t>> wvs(kThreads);

  test::run_rr_sim(kThreads, [&](int id) {
    auto& mine = *v[static_cast<std::size_t>(id)];
    for (int i = 0; i < kTxs; ++i) {
      stm::atomically([&](stm::Tx& tx) { mine.set(tx, mine.get(tx) + 1); });
      wvs[static_cast<std::size_t>(id)].push_back(my_last_wv());
    }
  });

  // A thread repeatedly overwriting its own variable must carry strictly
  // increasing timestamps even across epoch rollovers (the grant exceeds
  // the version it overwrites; epochs only grow).
  for (const auto& per_thread : wvs) {
    ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kTxs));
    for (std::size_t i = 1; i < per_thread.size(); ++i) {
      ASSERT_LT(per_thread[i - 1], per_thread[i])
          << "a thread's commit timestamps went non-monotonic";
    }
  }
  for (int i = 0; i < kThreads; ++i)
    EXPECT_EQ(v[static_cast<std::size_t>(i)]->unsafe_load(), kTxs);

  // quota=2 with 50 commits per shard must have rolled the epoch many
  // times, and every commit drew from its own slot's shard.
  const stm::TxStats agg = rt.aggregate_stats();
  EXPECT_GT(agg.epoch_bumps, 0u) << "slice quota never rolled the epoch";
  std::uint64_t granted = 0;
  for (int i = 0; i < kThreads; ++i)
    granted += rt.shard_grants(static_cast<std::size_t>(i));
  EXPECT_EQ(granted, agg.commits)
      << "shard grant counters disagree with commit count";
  test::drain_memory();
}

TEST(StmSharded, OverlappingWritersNeverShareATimestamp) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kSharded;

  constexpr int kThreads = 8;
  constexpr int kTxs = 40;
  auto x = std::make_unique<stm::TVar<long>>(0);
  std::vector<std::vector<std::uint64_t>> wvs(kThreads);

  test::run_rr_sim(kThreads, [&](int id) {
    for (int i = 0; i < kTxs; ++i) {
      stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
      wvs[static_cast<std::size_t>(id)].push_back(my_last_wv());
    }
  });

  // One shared variable: every commit overwrites the previous one, so the
  // per-location chain — and hence every timestamp — must be distinct
  // even though grants come from 8 different shards.
  std::set<std::uint64_t> distinct;
  for (const auto& per_thread : wvs)
    for (std::uint64_t wv : per_thread) distinct.insert(wv);
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kThreads) * kTxs)
      << "two overlapping commits shared a sharded timestamp";
  EXPECT_EQ(x->unsafe_load(), static_cast<long>(kThreads) * kTxs);
  test::drain_memory();
}

TEST(StmSharded, CrossShardReadValidationPreservesDependencyOrder) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kSharded;
  rt.config.clock_epoch_quota = 3;  // rollovers while the chain is live

  // Thread 0 advances x (shard 0); thread 1 copies x into y (shard 1);
  // thread 2 reads y then x in one classic transaction.  y is a copy of
  // an EARLIER x, so every consistent view satisfies x >= y — a reader
  // whose cross-shard validation was unsound could catch y ahead of the
  // x it derived from.
  auto x = std::make_unique<stm::TVar<long>>(0);
  auto y = std::make_unique<stm::TVar<long>>(0);

  test::run_random_sim(3, /*seed=*/11, [&](int id) {
    if (id == 0) {
      for (int i = 0; i < 80; ++i)
        stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
    } else if (id == 1) {
      for (int i = 0; i < 80; ++i)
        stm::atomically([&](stm::Tx& tx) { y->set(tx, x->get(tx)); });
    } else {
      for (int i = 0; i < 80; ++i) {
        stm::atomically([&](stm::Tx& tx) {
          const long yv = y->get(tx);
          const long xv = x->get(tx);
          EXPECT_LE(yv, xv) << "read crossed shards against dependency order";
        });
      }
    }
  });
  EXPECT_LE(y->unsafe_load(), x->unsafe_load());
  test::drain_memory();
}

TEST(StmSharded, SnapshotBoundsAreFreshAndCutsStayConsistent) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kSharded;

  // Fresh-floor property, sequentially first: a snapshot begun after a
  // commit completed must observe it even though the epoch floor itself
  // never moved for that commit.
  auto x = std::make_unique<stm::TVar<long>>(0);
  stm::atomically([&](stm::Tx& tx) { x->set(tx, 41); });
  const long seen = stm::atomically(
      Semantics::kSnapshot, [&](stm::Tx& tx) { return x->get(tx); });
  EXPECT_EQ(seen, 41) << "snapshot bound trailed an already-retired commit";

  // Concurrently: transfers keep the total at zero; snapshot sums must
  // see a consistent cut although the transfers' timestamps come from
  // different shards of the same epoch.
  constexpr int kAccounts = 8;
  std::vector<std::unique_ptr<stm::TVar<long>>> acct;
  for (int i = 0; i < kAccounts; ++i)
    acct.push_back(std::make_unique<stm::TVar<long>>(0));

  test::run_random_sim(8, /*seed=*/7, [&](int id) {
    if (id == 0) {
      for (int i = 0; i < 60; ++i) {
        const long sum = stm::atomically(Semantics::kSnapshot,
                                         [&](stm::Tx& tx) {
                                           long s = 0;
                                           for (auto& a : acct)
                                             s += a->get(tx);
                                           return s;
                                         });
        EXPECT_EQ(sum, 0) << "snapshot observed an inconsistent cut";
      }
    } else {
      for (int i = 0; i < 60; ++i) {
        const int from = (id + i) % kAccounts;
        const int to = (id + i + 1) % kAccounts;
        stm::atomically([&](stm::Tx& tx) {
          acct[from]->set(tx, acct[from]->get(tx) - 1);
          acct[to]->set(tx, acct[to]->get(tx) + 1);
        });
      }
    }
  });

  long total = 0;
  for (auto& a : acct) total += a->unsafe_load();
  EXPECT_EQ(total, 0);
  test::drain_memory();
}

TEST(StmSharded, EpochFloorNeverRunsBackwards) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kSharded;
  rt.config.clock_epoch_quota = 1;  // every grant rolls the epoch

  auto x = std::make_unique<stm::TVar<long>>(0);
  std::uint64_t last_floor = rt.clock_peek();
  for (int i = 0; i < 20; ++i) {
    stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
    const std::uint64_t floor = rt.clock_peek();
    ASSERT_GE(floor, last_floor) << "epoch floor ran backwards";
    last_floor = floor;
  }
  EXPECT_EQ(x->unsafe_load(), 20);
  test::drain_memory();
}
