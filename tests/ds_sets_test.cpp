// Sequential and concurrent correctness of every set implementation —
// transactional structures and all baselines — through one parameterized
// suite, plus per-key accounting properties under the random adversary.
#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "test_util.hpp"

using namespace demotx;
using test::SetFactory;

class SetSuite : public ::testing::TestWithParam<SetFactory> {
 protected:
  void TearDown() override { test::drain_memory(); }
};

TEST_P(SetSuite, SequentialSemantics) {
  auto set = GetParam().make();
  EXPECT_EQ(set->size(), 0);
  EXPECT_FALSE(set->contains(5));
  EXPECT_TRUE(set->add(5));
  EXPECT_FALSE(set->add(5)) << "duplicate add must fail";
  EXPECT_TRUE(set->contains(5));
  EXPECT_TRUE(set->add(3));
  EXPECT_TRUE(set->add(9));
  EXPECT_EQ(set->size(), 3);
  EXPECT_FALSE(set->remove(4));
  EXPECT_TRUE(set->remove(5));
  EXPECT_FALSE(set->remove(5)) << "double remove must fail";
  EXPECT_FALSE(set->contains(5));
  EXPECT_EQ(set->size(), 2);
  EXPECT_EQ(set->unsafe_size(), 2);
}

TEST_P(SetSuite, ModelEquivalenceSingleThread) {
  auto set = GetParam().make();
  std::map<long, bool> model;
  std::uint64_t rng = 0xabcdefULL;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 600; ++i) {
    const long k = static_cast<long>(next() % 50);
    switch (next() % 4) {
      case 0:
        EXPECT_EQ(set->add(k), !model[k]) << "op " << i;
        model[k] = true;
        break;
      case 1:
        EXPECT_EQ(set->remove(k), model[k]) << "op " << i;
        model[k] = false;
        break;
      case 2:
        EXPECT_EQ(set->contains(k), model[k]) << "op " << i;
        break;
      default: {
        long expect = 0;
        for (auto& [key, present] : model) expect += present ? 1 : 0;
        EXPECT_EQ(set->size(), expect) << "op " << i;
      }
    }
  }
}

TEST_P(SetSuite, BoundaryKeys) {
  auto set = GetParam().make();
  EXPECT_TRUE(set->add(0));
  EXPECT_TRUE(set->add(1L << 40));
  EXPECT_TRUE(set->add(12345));
  EXPECT_TRUE(set->contains(0));
  EXPECT_TRUE(set->contains(1L << 40));
  EXPECT_EQ(set->size(), 3);
  EXPECT_TRUE(set->remove(0));
  EXPECT_TRUE(set->remove(1L << 40));
  EXPECT_EQ(set->size(), 1);
}

TEST_P(SetSuite, ConcurrentPerKeyAccounting) {
  if (GetParam().label == "seq") GTEST_SKIP() << "not thread-safe";
  constexpr long kRange = 24;
  constexpr int kThreads = 4;
  std::atomic<long> adds[kRange];
  std::atomic<long> removes[kRange];
  for (auto& a : adds) a = 0;
  for (auto& r : removes) r = 0;

  auto set = GetParam().make();
  test::run_random_sim(kThreads, /*seed=*/1234, [&](int id) {
    std::uint64_t rng = 55 + static_cast<std::uint64_t>(id) * 10007;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 80; ++i) {
      const long k = static_cast<long>(next() % kRange);
      switch (next() % 3) {
        case 0:
          if (set->add(k)) ++adds[k];
          break;
        case 1:
          if (set->remove(k)) ++removes[k];
          break;
        default:
          set->contains(k);
      }
    }
  });

  long expect_size = 0;
  for (long k = 0; k < kRange; ++k) {
    const long net = adds[k].load() - removes[k].load();
    ASSERT_GE(net, 0) << GetParam().label << " key " << k;
    ASSERT_LE(net, 1) << GetParam().label << " key " << k;
    EXPECT_EQ(set->contains(k), net == 1) << GetParam().label << " key " << k;
    expect_size += net;
  }
  EXPECT_EQ(set->unsafe_size(), expect_size) << GetParam().label;
}

TEST_P(SetSuite, ConcurrentChurnOnFewKeysStaysSound) {
  if (GetParam().label == "seq") GTEST_SKIP() << "not thread-safe";
  // All threads fight over three keys — maximal conflict density.
  auto set = GetParam().make();
  std::atomic<long> net{0};
  test::run_random_sim(6, /*seed=*/777, [&](int id) {
    std::uint64_t rng = 3 + static_cast<std::uint64_t>(id);
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 60; ++i) {
      const long k = static_cast<long>(next() % 3);
      if ((next() & 1) != 0) {
        if (set->add(k)) ++net;
      } else {
        if (set->remove(k)) --net;
      }
    }
  });
  EXPECT_EQ(set->unsafe_size(), net.load()) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(AllSets, SetSuite,
                         ::testing::ValuesIn(test::all_set_factories()),
                         [](const auto& info) {
                           std::string n = info.param.label;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });
