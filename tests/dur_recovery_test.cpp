// demotx:expert-file: test suite: exercises the expert tier (durable logger attach, config overrides, crash injection) by design
// Durability recovery edge cases as deterministic rows: crash mid-group
// (a durable prefix of the batch, acknowledged commits never lost),
// crash inside the checkpoint's install->truncate window (the folded
// prefix must be skipped, not replayed twice), recovery of an empty log,
// and double-recovery idempotence (replay is a pure function; apply is
// idempotent).  Each crashed schedule also re-certifies the full
// durability oracle through check::run_trace.
#include "dur/wal.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/durability.hpp"
#include "check/explore.hpp"
#include "mem/epoch.hpp"
#include "stm/durability.hpp"
#include "stm/objstm.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

namespace {

// Scoped override of the process-wide STM config (tests run with no
// transaction in flight around the override).
class ConfigOverride {
 public:
  ConfigOverride() : saved_(stm::Runtime::instance().config) {}
  ~ConfigOverride() { stm::Runtime::instance().config = saved_; }
  stm::Config& config() { return stm::Runtime::instance().config; }

 private:
  stm::Config saved_;
};

// One baseline-schedule run of the bank-dur workload crashed at `cycle`;
// the oracle and invariant checks inside run_trace must stay clean, and
// the WAL's capture survives the call for direct inspection.
check::ScheduleOutcome crash_bank_at(std::uint64_t cycle) {
  const check::ScheduleOutcome out =
      check::run_trace("bank-dur", {}, 1u << 20, true, cycle);
  EXPECT_FALSE(out.violation) << "crash@" << cycle << ": " << out.what;
  EXPECT_FALSE(out.hung) << "crash@" << cycle;
  return out;
}

}  // namespace

TEST(DurRecovery, CrashMidGroupKeepsDurablePrefixAndEveryAck) {
  ConfigOverride ov;
  ov.config().group_commit_batch = 3;
  ov.config().group_commit_interval = 64;
  ov.config().checkpoint_every = 0;  // pure log: no checkpoint folding

  bool saw_partial_group = false;   // some of the batch durable, some lost
  bool saw_durable_unacked = false; // flushed, crash before the ack resumed
  for (std::uint64_t cycle = 20; cycle <= 600; cycle += 3) {
    const check::ScheduleOutcome out = crash_bank_at(cycle);
    const dur::Capture& cap = dur::WalManager::instance().capture();
    ASSERT_TRUE(cap.valid);
    ASSERT_EQ(cap.crashed, out.crashed);
    if (!cap.crashed) break;  // cycle is past the whole run: done scanning

    std::size_t durable = 0;
    std::size_t lost = 0;
    for (const dur::SideRec& s : cap.side) {
      const bool is_durable = s.lsn_end <= cap.durable_lsn;
      (is_durable ? durable : lost) += 1;
      // Rule 1, asserted directly against the capture: an acknowledged
      // commit is durable no matter where the crash landed.
      if (s.acked) {
        EXPECT_LE(s.lsn_end, cap.durable_lsn)
            << "crash@" << cycle << ": acked wv " << s.wv << " lost";
      }
      if (is_durable && !s.acked) saw_durable_unacked = true;
    }
    if (durable > 0 && lost > 0) saw_partial_group = true;

    const dur::RecoveryResult r = dur::WalManager::replay(cap);
    EXPECT_TRUE(r.ok) << "crash@" << cycle << ": " << r.what;
  }
  // The scan must actually have produced the mid-group shapes, or the
  // test is vacuous.
  EXPECT_TRUE(saw_partial_group);
  EXPECT_TRUE(saw_durable_unacked);
}

TEST(DurRecovery, CrashInsideTruncationWindowSkipsFoldedPrefix) {
  ConfigOverride ov;
  ov.config().group_commit_batch = 1;    // flush per commit
  ov.config().group_commit_interval = 1;
  ov.config().checkpoint_every = 1;      // checkpoint per flush

  bool saw_mid_truncation = false;  // base installed, log not yet cut
  bool saw_truncated = false;       // a completed checkpoint survived
  for (std::uint64_t cycle = 20; cycle <= 900; ++cycle) {
    const check::ScheduleOutcome out = crash_bank_at(cycle);
    const dur::Capture& cap = dur::WalManager::instance().capture();
    ASSERT_TRUE(cap.valid);
    if (!cap.crashed) break;

    if (cap.folded_words > 0) {
      // The crash landed between checkpoint install and truncation: the
      // durable log still holds records already folded into the base.
      // Replay must skip them — folding twice would double-apply only
      // if values could accumulate, but version order would regress,
      // which replay() rejects; ok here proves the prefix was skipped.
      saw_mid_truncation = true;
      ASSERT_GE(cap.log.size(), cap.folded_words);
      const dur::RecoveryResult r = dur::WalManager::replay(cap);
      EXPECT_TRUE(r.ok) << "crash@" << cycle << ": " << r.what;
    }
    if (dur::WalManager::instance().stats().truncated_words > 0)
      saw_truncated = true;
    if (out.crashed && saw_mid_truncation && saw_truncated &&
        cycle > 200)
      break;  // both shapes observed; no need to scan the whole run
  }
  EXPECT_TRUE(saw_mid_truncation);
  EXPECT_TRUE(saw_truncated);
}

TEST(DurRecovery, EmptyLogRecoversToInitialImage) {
  stm::cell_uid_reset();
  stm::obj_uid_reset();
  dur::WalManager& wal = dur::WalManager::instance();
  wal.reset();

  std::array<stm::Cell, 3> cells{};
  std::uint64_t v = 7;
  for (stm::Cell& c : cells) c.unsafe_store(v++);
  for (stm::Cell& c : cells) wal.register_cell(&c);

  // No commits ever logged: recovery is exactly the registration image.
  wal.capture_quiescent_image();
  const dur::RecoveryResult r = wal.recover();
  ASSERT_TRUE(r.ok) << r.what;
  EXPECT_EQ(r.image, wal.initial_image().serialize());
  EXPECT_EQ(r.state.cells.size(), cells.size());

  // Applying the empty-log recovery leaves the cells as they were.
  wal.recover_apply(r);
  v = 7;
  for (stm::Cell& c : cells) EXPECT_EQ(c.unsafe_value(), v++);

  std::string why;
  EXPECT_TRUE(check::verify_durability(&why)) << why;
  wal.reset();
}

TEST(DurRecovery, DoubleRecoveryIsIdempotent) {
  ConfigOverride ov;
  ov.config().group_commit_batch = 2;
  ov.config().group_commit_interval = 16;
  ov.config().checkpoint_every = 2;

  stm::cell_uid_reset();
  stm::obj_uid_reset();
  dur::WalManager& wal = dur::WalManager::instance();
  wal.reset();

  // Cells owned by the test so recover_apply targets live storage.
  std::array<stm::Cell, 3> cells{};
  for (stm::Cell& c : cells) c.unsafe_store(50);
  for (stm::Cell& c : cells) wal.register_cell(&c);
  stm::set_commit_logger(&wal);

  // Two committers churn the cells until the injected crash.
  vt::Scheduler::Options sopts;
  sopts.crash_at_cycle = 260;
  sopts.on_crash = [] { dur::WalManager::instance().capture_crash_image(); };
  vt::Scheduler sched(sopts);
  for (int t = 0; t < 2; ++t) {
    sched.spawn([&cells](int id) {
      for (int i = 0; i < 8; ++i) {
        stm::atomically([&](stm::Tx& tx) {
          const std::uint64_t a = tx.read_word(cells[id]);
          tx.write_word(cells[id], a + 1);
          tx.write_word(cells[2], tx.read_word(cells[2]) + 1);
        });
      }
    });
  }
  sched.run();
  stm::set_commit_logger(nullptr);
  mem::EpochManager::instance().drain();
  ASSERT_TRUE(sched.crashed());

  const dur::Capture& cap = wal.capture();
  ASSERT_TRUE(cap.valid);
  ASSERT_TRUE(cap.crashed);
  ASSERT_GT(cap.durable_lsn, 0u) << "crash cycle too early: nothing flushed";

  // replay() is a pure function of the capture.
  const dur::RecoveryResult r1 = dur::WalManager::replay(cap);
  const dur::RecoveryResult r2 = dur::WalManager::replay(cap);
  ASSERT_TRUE(r1.ok) << r1.what;
  EXPECT_EQ(r1.ok, r2.ok);
  EXPECT_EQ(r1.clock_floor, r2.clock_floor);
  EXPECT_EQ(r1.image, r2.image);

  // Applying the same recovery twice leaves identical live state, and
  // that state matches the recovered image word for word.
  auto snapshot = [&cells] {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> s;
    for (stm::Cell& c : cells) s.emplace_back(c.unsafe_version(),
                                              c.unsafe_value());
    return s;
  };
  wal.recover_apply(r1);
  const auto after_once = snapshot();
  wal.recover_apply(r1);
  EXPECT_EQ(snapshot(), after_once);
  std::size_t id = 1;
  for (const auto& [ver, val] : after_once) {
    const auto it = r1.state.cells.find(id++);
    ASSERT_NE(it, r1.state.cells.end());
    EXPECT_EQ(ver, it->second.first);
    EXPECT_EQ(val, it->second.second);
  }
  wal.reset();
}

TEST(DurInject, TornWriteCaughtByCrashHuntInProcess) {
  // In-process variant of the dur_inject ctest row (which additionally
  // asserts byte-identical fresh-process replay): the planted seal-first
  // append must be caught by the random crash hunt, and the token must
  // re-fail on replay.
  ConfigOverride ov;
  ov.config().inject_torn_write = true;
  ov.config().group_commit_interval = 1;  // widen the flush/append overlap

  check::ExploreOptions opts;
  opts.workload = "bank-dur";
  opts.strategy = "pct";
  opts.schedules = 400;
  opts.seed = 1;
  opts.crash_hunt = true;
  const check::ExploreResult res = check::explore(opts);
  ASSERT_TRUE(res.found_violation) << "budget exhausted without detection";
  EXPECT_TRUE(res.replay_verified);
  ASSERT_FALSE(res.token.empty());
  EXPECT_NE(res.token.find(":crash="), std::string::npos) << res.token;

  // Two consecutive in-process replays: same verdict (absolute
  // timestamps in the message differ run to run because the commit
  // clock is process-global; byte-identical output across two FRESH
  // processes is asserted by the dur_inject ctest row).
  check::ExploreOptions rep;
  rep.strategy = "replay";
  rep.replay_token = res.token;
  const check::ExploreResult r1 = check::explore(rep);
  const check::ExploreResult r2 = check::explore(rep);
  EXPECT_TRUE(r1.found_violation);
  EXPECT_TRUE(r2.found_violation);
}
