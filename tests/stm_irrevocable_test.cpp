// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Irrevocable (inevitable) transactions: guaranteed single-attempt
// commit, serialization against other updaters, token hygiene, and the
// usage-error surface.
#include <gtest/gtest.h>

#include <atomic>

#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::Semantics;

TEST(StmIrrevocable, CommitsOnTheFirstAttempt) {
  stm::TVar<long> x{1};
  int body_runs = 0;
  stm::atomically_irrevocable([&](stm::Tx& tx) {
    ++body_runs;
    x.set(tx, x.get(tx) + 1);
  });
  EXPECT_EQ(body_runs, 1);
  EXPECT_EQ(x.unsafe_load(), 2);
  EXPECT_EQ(stm::Runtime::instance().irrevocable_owner(), -1)
      << "token must be released after commit";
}

TEST(StmIrrevocable, NeverAbortsUnderHeavyContention) {
  // One irrevocable thread does long read-modify-write transactions over
  // all cells while seven classic threads hammer the same cells.  Every
  // irrevocable body must run exactly once per transaction.
  constexpr int kCells = 8;
  std::vector<std::unique_ptr<stm::TVar<long>>> v;
  for (int i = 0; i < kCells; ++i)
    v.push_back(std::make_unique<stm::TVar<long>>(0));

  std::atomic<long> body_runs{0};
  std::atomic<long> irrevocable_commits{0};
  test::run_rr_sim(8, [&](int id) {
    if (id == 0) {
      for (int i = 0; i < 25; ++i) {
        stm::atomically_irrevocable([&](stm::Tx& tx) {
          ++body_runs;
          long sum = 0;
          for (auto& c : v) sum += c->get(tx);
          v[0]->set(tx, sum + 1);
        });
        ++irrevocable_commits;
      }
    } else {
      for (int i = 0; i < 80; ++i) {
        stm::atomically([&](stm::Tx& tx) {
          const int c = (id + i) % kCells;
          v[c]->set(tx, v[c]->get(tx) + 1);
        });
      }
    }
  });
  EXPECT_EQ(body_runs.load(), irrevocable_commits.load())
      << "an irrevocable body re-executed";
  EXPECT_EQ(body_runs.load(), 25);
}

TEST(StmIrrevocable, OtherUpdatersStillMakeProgress) {
  auto x = std::make_unique<stm::TVar<long>>(0);
  test::run_rr_sim(4, [&](int id) {
    for (int i = 0; i < 30; ++i) {
      if (id == 0) {
        stm::atomically_irrevocable(
            [&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
      } else {
        stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
      }
    }
  });
  EXPECT_EQ(x->unsafe_load(), 4 * 30);
}

TEST(StmIrrevocable, TwoIrrevocablesSerialize) {
  auto x = std::make_unique<stm::TVar<long>>(0);
  std::atomic<bool> overlap{false};
  std::atomic<int> inside{0};
  test::run_random_sim(3, /*seed=*/99, [&](int) {
    for (int i = 0; i < 15; ++i) {
      stm::atomically_irrevocable([&](stm::Tx& tx) {
        if (inside.fetch_add(1) != 0) overlap.store(true);
        x->set(tx, x->get(tx) + 1);
        vt::access();  // widen the window
        inside.fetch_sub(1);
      });
    }
  });
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(x->unsafe_load(), 3 * 15);
}

TEST(StmIrrevocable, CannotNestInsideAnotherTransaction) {
  stm::TVar<long> x{0};
  EXPECT_THROW(stm::atomically([&](stm::Tx&) {
                 stm::atomically_irrevocable(
                     [&](stm::Tx& tx) { x.set(tx, 1); });
               }),
               stm::TxUsageError);
  EXPECT_EQ(stm::Runtime::instance().irrevocable_owner(), -1);
}

TEST(StmIrrevocable, RetryInsideIsAUsageError) {
  stm::TVar<long> x{0};
  EXPECT_THROW(stm::atomically_irrevocable([&](stm::Tx& tx) {
                 (void)x.get(tx);
                 stm::retry(tx);
               }),
               stm::TxUsageError);
  EXPECT_EQ(stm::Runtime::instance().irrevocable_owner(), -1)
      << "token leaked after the failed retry";
}

TEST(StmIrrevocable, UserExceptionReleasesTheToken) {
  stm::TVar<long> x{5};
  EXPECT_THROW(stm::atomically_irrevocable([&](stm::Tx& tx) {
                 x.set(tx, 9);
                 throw std::runtime_error("side effect failed");
               }),
               std::runtime_error);
  EXPECT_EQ(x.unsafe_load(), 5);
  EXPECT_EQ(stm::Runtime::instance().irrevocable_owner(), -1);
  // The runtime is still fully usable afterwards.
  stm::atomically([&](stm::Tx& tx) { x.set(tx, 6); });
  EXPECT_EQ(x.unsafe_load(), 6);
}

TEST(StmIrrevocable, CannotBeKilledByContentionManagers) {
  auto& rt = stm::Runtime::instance();
  stm::Tx& tx = rt.tx_for_slot(90);
  tx.begin(Semantics::kClassic, 0, /*irrevocable=*/true);
  const std::uint64_t w = tx.status_word();
  EXPECT_FALSE(tx.try_kill(w));
  tx.commit();
  EXPECT_EQ(rt.irrevocable_owner(), -1);
}
