// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Elastic cut points under forced preemption (paper Fig. 5, the
// false-conflict argument): a writer commit is forced between EVERY pair
// of adjacent parse reads of a traversal — i.e. at every cut boundary —
// over both tx_list and tx_skiplist.  A classic parse holds its whole
// path in the read set, so the head-side write invalidates it at almost
// every boundary; the elastic parse cuts the prefix out of its window
// and must commit abort-free once the written link has left the window.
// Every schedule's recorded history is additionally certified by the
// cut-consistency oracle, so the commits are not merely abort-free but
// provably hand-over-hand atomic.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/explore.hpp"
#include "check/oracles.hpp"
#include "check/recorder.hpp"
#include "ds/tx_list.hpp"
#include "ds/tx_skiplist.hpp"
#include "mem/epoch.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;
using check::Preemption;

namespace {

struct RunStats {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  bool cut_seen = false;
  bool hung = false;
  bool oracle_ok = false;
  std::string what;
  bool reader_result = false;
  std::size_t choices = 0;  // choice points in this schedule
};

// Runs reader (thread 0) and writer (thread 1) over a fresh set under the
// kChoice baseline, deviating only at the given preemptions; records the
// history and certifies it.
RunStats run_preempted(const std::function<std::unique_ptr<ISet>()>& make,
                       const std::function<bool(ISet&)>& reader,
                       const std::function<void(ISet&)>& writer,
                       const std::vector<Preemption>& trace) {
  RunStats rs;
  std::unique_ptr<ISet> set = make();
  check::Recorder rec;
  rec.attach();
  std::vector<vt::Scheduler::Decision> log;
  {
    vt::Scheduler::Options so;
    so.policy = vt::Scheduler::Policy::kChoice;
    so.max_cycles = 1u << 22;
    so.decision_log = &log;
    so.choice_fn = [&trace](const vt::Scheduler::ChoicePoint& cp) {
      for (const Preemption& p : trace) {
        if (p.index != cp.index) continue;
        for (int j = 0; j < cp.n; ++j)
          if (cp.runnable[j] == p.task) return p.task;
      }
      return check::baseline_choice(cp);
    };
    vt::Scheduler sched(so);
    sched.spawn([&](int) { rs.reader_result = reader(*set); });
    sched.spawn([&](int) { writer(*set); });
    sched.run();
    rs.hung = sched.hit_cycle_limit();
  }
  rec.detach();

  rs.attempts = rec.attempts().size();
  for (const check::Attempt& a : rec.attempts()) {
    a.committed() ? ++rs.commits : ++rs.aborts;
    for (const check::ReadRec& r : a.reads)
      if (r.cut_before > 0) rs.cut_seen = true;
  }
  const check::OracleResult o = check::certify(rec.attempts());
  rs.oracle_ok = o.ok;
  rs.what = o.what;
  rs.choices = log.size();

  set.reset();
  mem::EpochManager::instance().drain();
  return rs;
}

struct Sweep {
  std::uint64_t total_aborts = 0;
  std::uint64_t runs_with_aborts = 0;
  std::uint64_t clean_runs = 0;  // zero aborts
  std::vector<std::uint64_t> aborts_at;  // per preempted index
  bool any_cut = false;
};

// Forces a switch to the writer at every choice index the baseline
// schedule exposes; asserts per-run sanity and accumulates abort counts.
Sweep sweep_every_boundary(
    const std::function<std::unique_ptr<ISet>()>& make,
    const std::function<bool(ISet&)>& reader,
    const std::function<void(ISet&)>& writer, bool expect_reader) {
  Sweep sw;
  const RunStats base = run_preempted(make, reader, writer, {});
  EXPECT_FALSE(base.hung);
  EXPECT_TRUE(base.oracle_ok) << base.what;
  EXPECT_GT(base.choices, 4u);
  for (std::uint64_t i = 0; i < base.choices; ++i) {
    const RunStats rs =
        run_preempted(make, reader, writer, {{i, /*writer=*/1}});
    EXPECT_FALSE(rs.hung) << "preempt@" << i;
    EXPECT_TRUE(rs.oracle_ok) << "preempt@" << i << ": " << rs.what;
    EXPECT_EQ(rs.reader_result, expect_reader) << "preempt@" << i;
    sw.total_aborts += rs.aborts;
    sw.aborts_at.push_back(rs.aborts);
    if (rs.aborts > 0) ++sw.runs_with_aborts;
    if (rs.aborts == 0) ++sw.clean_runs;
    sw.any_cut = sw.any_cut || rs.cut_seen;
  }
  return sw;
}

std::function<std::unique_ptr<ISet>()> make_list(stm::Semantics parse) {
  return [parse]() -> std::unique_ptr<ISet> {
    auto s = std::make_unique<ds::TxList>(
        ds::TxList::Options{parse, stm::Semantics::kSnapshot});
    for (long k = 10; k <= 70; k += 10) s->add(k);
    return s;
  };
}

std::function<std::unique_ptr<ISet>()> make_skiplist(
    stm::Semantics parse) {
  return [parse]() -> std::unique_ptr<ISet> {
    auto s = std::make_unique<ds::TxSkipList>(
        ds::TxSkipList::Options{parse, stm::Semantics::kSnapshot});
    for (long k = 10; k <= 70; k += 10) s->add(k);
    return s;
  };
}

bool read_far_key(ISet& s) { return s.contains(70); }
void write_near_head(ISet& s) { s.add(5); }
// Ahead of the traversal: the reader meets the modified link only AFTER
// the commit, with a version newer than its rv — the Fig. 5 shape.
void write_near_tail(ISet& s) { s.add(65); }
void remove_mid(ISet& s) { s.remove(40); }

}  // namespace

TEST(ElasticCut, ListParseSurvivesTailInsertAtEveryBoundary) {
  // add(65) commits ahead of a contains(70) traversal: at most preemption
  // points the classic parse later reads 60->next with a version newer
  // than its rv and aborts — the false conflict of Fig. 5, since the
  // traversal result is unaffected.  The elastic parse cuts its way past
  // the newer link and commits.
  const Sweep elastic = sweep_every_boundary(
      make_list(stm::Semantics::kElastic), read_far_key, write_near_tail,
      /*expect_reader=*/true);
  const Sweep classic = sweep_every_boundary(
      make_list(stm::Semantics::kClassic), read_far_key, write_near_tail,
      /*expect_reader=*/true);

  // The elastic parse recorded cuts (window smaller than the path).
  EXPECT_TRUE(elastic.any_cut);
  // The classic parse is invalidated by the tail insert at some boundary.
  EXPECT_GT(classic.runs_with_aborts, 0u);
  // Fig. 5: the cut removes those false conflicts.  Elastic may still
  // abort where the written link is inside its window at the preemption
  // point (a true conflict), but strictly less overall, and it has
  // boundaries where classic aborts and elastic commits first try.
  EXPECT_LT(elastic.total_aborts, classic.total_aborts);
  bool elastic_clean_where_classic_aborts = false;
  const std::size_t common =
      std::min(elastic.aborts_at.size(), classic.aborts_at.size());
  for (std::size_t i = 0; i < common; ++i)
    if (classic.aborts_at[i] > 0 && elastic.aborts_at[i] == 0)
      elastic_clean_where_classic_aborts = true;
  EXPECT_TRUE(elastic_clean_where_classic_aborts);
}

TEST(ElasticCut, ListParseSurvivesConcurrentRemoveAtEveryBoundary) {
  // remove(40) exercises the victim's self-written link: an elastic
  // window still holding 40's outgoing link at the preemption point must
  // abort (true conflict — the self-write bumps its version); windows
  // that already cut it commit clean.  Every history must certify.
  const Sweep elastic = sweep_every_boundary(
      make_list(stm::Semantics::kElastic), read_far_key, remove_mid,
      /*expect_reader=*/true);
  EXPECT_TRUE(elastic.any_cut);
  EXPECT_GT(elastic.clean_runs, 0u);

  const Sweep classic = sweep_every_boundary(
      make_list(stm::Semantics::kClassic), read_far_key, remove_mid,
      /*expect_reader=*/true);
  EXPECT_LT(elastic.total_aborts, classic.total_aborts);
}

TEST(ElasticCut, SkiplistDescentSurvivesHeadInsertAtEveryBoundary) {
  // Same sweep over the skip-list's multi-level descent.  add(5) splices
  // near the head across its levels through a nested classic update; the
  // elastic descent's window cuts the touched prefix away level by level.
  const Sweep elastic = sweep_every_boundary(
      make_skiplist(stm::Semantics::kElastic), read_far_key, write_near_head,
      /*expect_reader=*/true);
  const Sweep classic = sweep_every_boundary(
      make_skiplist(stm::Semantics::kClassic), read_far_key, write_near_head,
      /*expect_reader=*/true);

  EXPECT_TRUE(elastic.any_cut);
  EXPECT_GT(classic.runs_with_aborts, 0u);
  EXPECT_LT(elastic.total_aborts, classic.total_aborts);
}
