// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Mixing semantics (paper Sec. 5): transactions of different semantics
// run concurrently over the same data without breaking each other;
// composition via nesting; the early-release composition bug the paper
// warns about (Sec. 4.1), demonstrated mechanically.
#include <gtest/gtest.h>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::Semantics;

TEST(StmMixed, AllThreeSemanticsConcurrently) {
  // Elastic updaters + classic transfers + snapshot auditors on shared
  // data; every semantics' own guarantee must hold simultaneously.
  constexpr long kTotal = 1000;
  for (std::uint64_t seed : {31u, 32u, 33u, 34u, 35u}) {
    auto list = std::make_unique<ds::TxList>(
        ds::TxList::Options{Semantics::kElastic, Semantics::kSnapshot});
    auto a = std::make_unique<stm::TVar<long>>(kTotal / 2);
    auto b = std::make_unique<stm::TVar<long>>(kTotal / 2);
    for (long k = 0; k < 20; ++k) ASSERT_TRUE(list->add(k * 3));

    std::atomic<bool> bad_sum{false};
    std::atomic<bool> bad_size{false};
    test::run_random_sim(6, seed, [&](int id) {
      std::uint64_t rng = seed * 31 + static_cast<std::uint64_t>(id) + 1;
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int i = 0; i < 40; ++i) {
        switch (id % 3) {
          case 0: {  // elastic set updates
            const long k = static_cast<long>(next() % 90);
            if ((next() & 1) != 0) {
              list->add(k);
            } else {
              list->remove(k);
            }
            break;
          }
          case 1: {  // classic transfer between a and b
            const long amt = static_cast<long>(next() % 10);
            stm::atomically([&](stm::Tx& tx) {
              a->set(tx, a->get(tx) - amt);
              b->set(tx, b->get(tx) + amt);
            });
            break;
          }
          default: {  // snapshot audit of everything at once
            stm::atomically(Semantics::kSnapshot, [&](stm::Tx& tx) {
              if (a->get(tx) + b->get(tx) != kTotal) bad_sum.store(true);
            });
            const long s = list->size();
            if (s < 0 || s > 90) bad_size.store(true);
            break;
          }
        }
      }
    });
    EXPECT_FALSE(bad_sum.load()) << "seed " << seed;
    EXPECT_FALSE(bad_size.load()) << "seed " << seed;
    EXPECT_EQ(a->unsafe_load() + b->unsafe_load(), kTotal);
    test::drain_memory();
  }
}

TEST(StmMixed, ComposedRenameIsAtomic) {
  // The paper's Fig. 3: Bob composes Alice's remove and add into rename.
  // Concurrent renames of the same key in opposite directions must never
  // lose or duplicate the file.
  for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
    auto d1 = std::make_unique<ds::TxList>(
        ds::TxList::Options{Semantics::kElastic, Semantics::kClassic});
    auto d2 = std::make_unique<ds::TxList>(
        ds::TxList::Options{Semantics::kElastic, Semantics::kClassic});
    ASSERT_TRUE(d1->add(7));

    auto rename = [](ds::TxList& from, ds::TxList& to, long key) {
      return stm::atomically([&](stm::Tx&) {
        if (!from.remove(key)) return false;  // nested joins, composable
        to.add(key);
        return true;
      });
    };

    std::atomic<int> moved{0};
    test::run_random_sim(2, seed, [&](int id) {
      const bool ok = (id == 0) ? rename(*d1, *d2, 7) : rename(*d2, *d1, 7);
      if (ok) ++moved;
    });
    // Exactly one rename can win the race on key 7's current home; the
    // other either moved it back (both succeed, net zero or full cycle)
    // or found it absent.  In every outcome the key exists exactly once.
    const int total = static_cast<int>(d1->unsafe_size() + d2->unsafe_size());
    EXPECT_EQ(total, 1) << "seed " << seed << " lost or duplicated the key";
    EXPECT_GE(moved.load(), 1);
    test::drain_memory();
  }
}

TEST(StmMixed, AddIfAbsentComposesFromElasticPieces) {
  // Sec. 4.1/4.2: Bob composes Alice's elastic contains+add into a classic
  // addIfAbsent(x, y): insert x only if y is absent.  Two concurrent
  // addIfAbsent(x,y) / addIfAbsent(y,x) must never insert both.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto list = std::make_unique<ds::TxList>(
        ds::TxList::Options{Semantics::kElastic, Semantics::kClassic});

    auto add_if_absent = [&](long x, long y) {
      return stm::atomically(Semantics::kClassic, [&](stm::Tx&) {
        if (list->contains(y)) return false;  // Alice's elastic contains
        return list->add(x);                  // Alice's elastic add
      });
    };

    test::run_random_sim(2, seed, [&](int id) {
      if (id == 0) {
        add_if_absent(10, 20);
      } else {
        add_if_absent(20, 10);
      }
    });
    const bool has10 = list->contains(10);
    const bool has20 = list->contains(20);
    EXPECT_FALSE(has10 && has20)
        << "seed " << seed
        << ": classic composition must forbid inserting both";
    EXPECT_TRUE(has10 || has20) << "seed " << seed;
    test::drain_memory();
  }
}

TEST(StmMixed, EarlyReleaseBreaksComposition) {
  // The same addIfAbsent built on *early release* (the transaction
  // forgets its read of y) is broken: under at least one schedule both
  // keys get inserted.  This is the paper's argument for elastic
  // transactions over early release.
  stm::TVar<long> present10{0};
  stm::TVar<long> present20{0};

  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(70);
  stm::Tx& t2 = rt.tx_for_slot(71);

  // t1: addIfAbsent(10, 20) with early release of the "contains(20)" read.
  t1.begin(Semantics::kClassic, 0);
  EXPECT_EQ(present20.get(t1), 0);  // 20 absent
  present20.release(t1);            // expert "optimization"
  present10.set(t1, 1);             // insert 10

  // t2: addIfAbsent(20, 10), same trick, interleaved before t1 commits.
  t2.begin(Semantics::kClassic, 0);
  EXPECT_EQ(present10.get(t2), 0);
  present10.release(t2);
  present20.set(t2, 1);

  t1.commit();
  t2.commit();  // both commit: the composed operation is NOT atomic

  EXPECT_EQ(present10.unsafe_load(), 1);
  EXPECT_EQ(present20.unsafe_load(), 1)
      << "early release was expected to break atomicity here";
}

TEST(StmMixed, WithoutEarlyReleaseTheSameScheduleIsRejected) {
  stm::TVar<long> present10{0};
  stm::TVar<long> present20{0};

  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(70);
  stm::Tx& t2 = rt.tx_for_slot(71);

  t1.begin(Semantics::kClassic, 0);
  EXPECT_EQ(present20.get(t1), 0);
  present10.set(t1, 1);

  t2.begin(Semantics::kClassic, 0);
  EXPECT_EQ(present10.get(t2), 0);
  present20.set(t2, 1);

  t1.commit();
  bool aborted = false;
  try {
    t2.commit();
  } catch (const stm::AbortTx& a) {
    aborted = true;
    t2.rollback(a.reason);
  }
  EXPECT_TRUE(aborted) << "classic validation must reject the second commit";
  EXPECT_EQ(present20.unsafe_load(), 0);
}

TEST(StmMixed, ClassicNestedInElasticStrengthens) {
  // An elastic transaction that calls a classic component must stop
  // cutting: afterwards, its earlier reads stay validated to the end.
  stm::TVar<long> a{0};
  stm::TVar<long> b{0};
  stm::TVar<long> c{0};

  auto& rt = stm::Runtime::instance();
  stm::Tx& ti = rt.tx_for_slot(70);
  stm::Tx& tj = rt.tx_for_slot(71);

  ti.begin(Semantics::kElastic, 0);
  EXPECT_EQ(a.get(ti), 0);
  ti.strengthen_to_classic();  // what nested atomically(kClassic) triggers
  EXPECT_FALSE(ti.in_elastic_phase());
  EXPECT_EQ(b.get(ti), 0);

  tj.begin(Semantics::kClassic, 0);
  a.set(tj, 5);  // would have been cut away under elastic reads
  tj.commit();

  EXPECT_EQ(c.get(ti), 0);  // classic read; read set revalidates a → abort?
  c.set(ti, 1);
  bool aborted = false;
  try {
    ti.commit();
  } catch (const stm::AbortTx& x) {
    aborted = true;
    ti.rollback(x.reason);
  }
  EXPECT_TRUE(aborted)
      << "after strengthening, the early read of a must be validated";
}

TEST(StmMixed, SnapshotNestedInClassicIsAllowed) {
  stm::TVar<long> x{3};
  const long v = stm::atomically([&](stm::Tx&) {
    return stm::atomically(Semantics::kSnapshot,
                           [&](stm::Tx& tx) { return x.get(tx); });
  });
  EXPECT_EQ(v, 3);
}

TEST(StmMixed, ElasticNestedInClassicRunsClassically) {
  stm::TVar<long> x{1};
  stm::atomically([&](stm::Tx& outer) {
    EXPECT_EQ(outer.semantics(), Semantics::kClassic);
    stm::atomically(Semantics::kElastic, [&](stm::Tx& inner) {
      EXPECT_EQ(&inner, &outer);  // demotx:expert: asserts flat nesting by descriptor identity; the address does not escape the tx
      EXPECT_EQ(inner.semantics(), Semantics::kClassic);
      x.set(inner, 2);
    });
  });
  EXPECT_EQ(x.unsafe_load(), 2);
}
