#include <gtest/gtest.h>
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

TEST(Smoke, SingleThreadIncrement) {
  stm::TVar<long> x{0};
  for (int i = 0; i < 10; ++i)
    stm::atomically([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  EXPECT_EQ(x.unsafe_load(), 10);
}

TEST(Smoke, SimTwoThreads) {
  auto x = std::make_unique<stm::TVar<long>>(0);
  vt::run_sim(2, [&](int) {
    for (int i = 0; i < 100; ++i)
      stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
  });
  EXPECT_EQ(x->unsafe_load(), 200);
}
