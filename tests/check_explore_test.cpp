// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// The exploration subsystem itself: PCT/Choice scheduler policies,
// decision logs and preemption-trace replay, the live recorder, the
// per-semantics oracles (including hand-built violating histories), the
// replay-token format, and the summary+GV4 legality pair.
#include "check/explore.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "check/recorder.hpp"
#include "check/workloads.hpp"
#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;
using check::Attempt;
using check::Preemption;
using check::ReadRec;

namespace {

// Scoped override of the process-wide STM config (tests run with no
// transaction in flight around the override).
class ConfigOverride {
 public:
  ConfigOverride() : saved_(stm::Runtime::instance().config) {}
  ~ConfigOverride() { stm::Runtime::instance().config = saved_; }
  stm::Config& config() { return stm::Runtime::instance().config; }

 private:
  stm::Config saved_;
};

}  // namespace

// ---------------------------------------------------------------------
// Scheduler policies
// ---------------------------------------------------------------------

TEST(PctPolicy, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    std::vector<vt::Scheduler::Decision> log;
    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kPct;
    opts.seed = seed;
    opts.pct_horizon = 64;
    opts.decision_log = &log;
    std::vector<int> trace;
    vt::Scheduler sched(opts);
    for (int t = 0; t < 3; ++t) {
      sched.spawn([&trace](int id) {
        for (int s = 0; s < 6; ++s) {
          trace.push_back(id);
          vt::access();
        }
      });
    }
    sched.run();
    return std::make_pair(trace, log.size());
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_GT(a.second, 0u);
  // Other seeds draw other priority permutations; with 3! orders one
  // specific pair can collide, but not eight in a row.
  bool any_different = false;
  for (std::uint64_t s = 43; s <= 50 && !any_different; ++s)
    any_different = run(s).first != a.first;
  EXPECT_TRUE(any_different);
}

TEST(PctPolicy, StrictPriorityRunsOneThreadToCompletion) {
  // Without change points PCT runs the top-priority thread until it
  // finishes: the execution order is a concatenation of whole threads.
  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kPct;
  opts.seed = 7;
  opts.pct_change_points = 0;
  std::vector<int> trace;
  vt::Scheduler sched(opts);
  for (int t = 0; t < 3; ++t) {
    sched.spawn([&trace](int id) {
      for (int s = 0; s < 5; ++s) {
        trace.push_back(id);
        vt::access();
      }
    });
  }
  sched.run();
  ASSERT_EQ(trace.size(), 15u);
  for (std::size_t i = 0; i < trace.size(); i += 5) {
    for (std::size_t j = 1; j < 5; ++j) EXPECT_EQ(trace[i], trace[i + j]);
  }
}

TEST(PctPolicy, SpinBreakerUnblocksPriorityInvertedSpinLoop) {
  // Thread A spins on a flag only thread B sets.  If A gets the higher
  // priority, strict PCT would livelock; the fairness demotion must let
  // B run.  Try several seeds so both priority orders occur.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::atomic<bool> flag{false};
    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kPct;
    opts.seed = seed;
    opts.pct_change_points = 0;
    opts.max_cycles = 1u << 22;
    vt::Scheduler sched(opts);
    sched.spawn([&flag](int) {
      while (!flag.load(std::memory_order_relaxed)) vt::access();
    });
    sched.spawn([&flag](int) {
      vt::access();
      flag.store(true, std::memory_order_relaxed);
    });
    sched.run();
    EXPECT_FALSE(sched.hit_cycle_limit()) << "seed " << seed;
  }
}

TEST(ChoicePolicy, BaselineContinuesLastThread) {
  // With no preemptions the baseline rule runs thread 0 to completion,
  // then thread 1 (fibers spawn runnable in id order).
  std::vector<int> trace;
  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kChoice;
  opts.choice_fn = check::baseline_choice;
  vt::Scheduler sched(opts);
  for (int t = 0; t < 2; ++t) {
    sched.spawn([&trace](int id) {
      for (int s = 0; s < 4; ++s) {
        trace.push_back(id);
        vt::access();
      }
    });
  }
  sched.run();
  const std::vector<int> expect{0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_EQ(trace, expect);
}

TEST(ChoicePolicy, DecisionLogReplaysExactly) {
  // Record a random schedule, convert the log to a preemption trace,
  // replay under kChoice: the decision sequence must match bit for bit.
  auto body = [](std::vector<int>* trace) {
    return [trace](int id) {
      for (int s = 0; s < 5; ++s) {
        trace->push_back(id);
        vt::access();
      }
    };
  };
  std::vector<vt::Scheduler::Decision> log;
  std::vector<int> original;
  {
    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kRandom;
    opts.seed = 99;
    opts.decision_log = &log;
    vt::Scheduler sched(opts);
    for (int t = 0; t < 3; ++t) sched.spawn(body(&original));
    sched.run();
  }
  const std::vector<Preemption> trace = check::trace_from_log(log);
  std::vector<vt::Scheduler::Decision> replay_log;
  std::vector<int> replayed;
  {
    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kChoice;
    opts.decision_log = &replay_log;
    opts.choice_fn = [&trace](const vt::Scheduler::ChoicePoint& cp) {
      for (const Preemption& p : trace)
        if (p.index == cp.index) return p.task;
      return check::baseline_choice(cp);
    };
    vt::Scheduler sched(opts);
    for (int t = 0; t < 3; ++t) sched.spawn(body(&replayed));
    sched.run();
  }
  EXPECT_EQ(original, replayed);
  ASSERT_EQ(log.size(), replay_log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].chosen, replay_log[i].chosen) << "choice " << i;
    EXPECT_EQ(log[i].runnable_mask, replay_log[i].runnable_mask)
        << "choice " << i;
  }
}

// ---------------------------------------------------------------------
// Replay tokens
// ---------------------------------------------------------------------

TEST(ReplayToken, RoundTrips) {
  const std::vector<Preemption> trace{{3, 1}, {17, 0}, {40, 2}};
  const std::string tok = check::make_token("bank-skew", trace);
  EXPECT_EQ(tok, "demotx:v1:bank-skew:3@1,17@0,40@2");
  std::string workload;
  std::vector<Preemption> parsed;
  ASSERT_TRUE(check::parse_token(tok, &workload, &parsed));
  EXPECT_EQ(workload, "bank-skew");
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].index, trace[i].index);
    EXPECT_EQ(parsed[i].task, trace[i].task);
  }
  // Empty trace round-trips through the "-" marker.
  const std::string empty = check::make_token("queue", {});
  ASSERT_TRUE(check::parse_token(empty, &workload, &parsed));
  EXPECT_EQ(workload, "queue");
  EXPECT_TRUE(parsed.empty());
}

TEST(ReplayToken, RejectsMalformed) {
  std::string w;
  std::vector<Preemption> t;
  EXPECT_FALSE(check::parse_token("", &w, &t));
  EXPECT_FALSE(check::parse_token("demotx:v1:", &w, &t));
  EXPECT_FALSE(check::parse_token("demotx:v1:x:3@", &w, &t));
  EXPECT_FALSE(check::parse_token("demotx:v1:x:@1", &w, &t));
  EXPECT_FALSE(check::parse_token("demotx:v1:x:3-1", &w, &t));
  EXPECT_FALSE(check::parse_token("demotx:v2:x:-", &w, &t));
}

// ---------------------------------------------------------------------
// Oracles on hand-built histories
// ---------------------------------------------------------------------

namespace {

Attempt committed_update(int slot, std::uint64_t rv, std::uint64_t wv,
                         std::vector<ReadRec> reads,
                         std::vector<check::WriteRec> writes) {
  Attempt a;
  a.slot = slot;
  a.serial = 1;
  a.sem = stm::Semantics::kClassic;
  a.rv = rv;
  a.wv = wv;
  a.outcome = Attempt::Outcome::kCommitted;
  a.reads = std::move(reads);
  a.commit_writes = std::move(writes);
  return a;
}

ReadRec rd(int loc, std::uint64_t ver, std::uint64_t val) {
  ReadRec r;
  r.loc = loc;
  r.version = ver;
  r.value = val;
  r.in_read_set = true;
  return r;
}

}  // namespace

TEST(Oracles, CleanHistoryCertifies) {
  // t1 reads x@0 and writes y at wv=1; t2 reads y@1 (sees t1's value) and
  // writes x at wv=2.  Serializable: t1 then t2.
  std::vector<Attempt> h;
  h.push_back(committed_update(0, 0, 1, {rd(0, 0, 10)}, {{1, 77}}));
  h.push_back(committed_update(1, 1, 2, {rd(1, 1, 77)}, {{0, 11}}));
  const check::OracleResult r = check::certify(h);
  EXPECT_TRUE(r.ok) << r.what;
}

TEST(Oracles, DualPublishViolatesVersionChain) {
  // Two commits publish version 5 of location 0: the write lock admitted
  // two owners.
  std::vector<Attempt> h;
  h.push_back(committed_update(0, 0, 5, {}, {{0, 1}}));
  h.push_back(committed_update(1, 0, 5, {}, {{0, 2}}));
  const check::OracleResult r = check::certify(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.what.find("version-chain"), std::string::npos) << r.what;
}

TEST(Oracles, TornReadValueDetected) {
  // Two transactions read location 0 at the same version but saw
  // different values: a torn or uncommitted read.
  std::vector<Attempt> h;
  h.push_back(committed_update(0, 0, 1, {rd(0, 0, 10)}, {{1, 1}}));
  h.push_back(committed_update(1, 0, 2, {rd(0, 0, 999)}, {{2, 1}}));
  const check::OracleResult r = check::certify(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.what.find("read-value"), std::string::npos) << r.what;
}

TEST(Oracles, WriteSkewViolatesUpdateCertification) {
  // Classic write skew: both read both accounts at version 0, each
  // writes its own at distinct timestamps; the later committer held a
  // read the earlier one invalidated at or before its wv.
  std::vector<Attempt> h;
  h.push_back(committed_update(0, 0, 1, {rd(0, 0, 60), rd(1, 0, 60)},
                               {{0, 1}}));
  h.push_back(committed_update(1, 0, 2, {rd(0, 0, 60), rd(1, 0, 60)},
                               {{1, 1}}));
  const check::OracleResult r = check::certify(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.what.find("update-certification"), std::string::npos) << r.what;
}

TEST(Oracles, Gv4SharedTimestampWriteSkewDetected) {
  // The GV4 shape: both commits share wv=1 (adopter + winner).  The
  // update-certification interval is (observed, wv] inclusive, which is
  // exactly what catches the same-timestamp skew.
  std::vector<Attempt> h;
  h.push_back(committed_update(0, 0, 1, {rd(0, 0, 60), rd(1, 0, 60)},
                               {{0, 1}}));
  h.push_back(committed_update(1, 0, 1, {rd(0, 0, 60), rd(1, 0, 60)},
                               {{1, 1}}));
  const check::OracleResult r = check::certify(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.what.find("update-certification"), std::string::npos) << r.what;
}

TEST(Oracles, InconsistentSnapshotDetected) {
  // A read-only attempt observed x at version 0 but y at version 5,
  // where another commit wrote x at version 3 <= 5: no serialization
  // point can see both.
  std::vector<Attempt> h;
  h.push_back(committed_update(0, 0, 3, {}, {{0, 99}}));   // writes x@3
  h.push_back(committed_update(1, 2, 5, {}, {{1, 42}}));   // writes y@5
  Attempt ro;
  ro.slot = 2;
  ro.serial = 1;
  ro.sem = stm::Semantics::kSnapshot;
  ro.outcome = Attempt::Outcome::kCommitted;
  ro.reads.push_back(rd(0, 0, 1));  // x before its overwrite at 3
  ro.reads.push_back(rd(1, 5, 42)); // y after 5
  h.push_back(ro);
  const check::OracleResult r = check::certify(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.what.find("consistency violation"), std::string::npos)
      << r.what;
}

TEST(Oracles, ElasticWindowMovesForwardAcrossCuts) {
  // An elastic parse may observe a mutation mid-traversal as long as
  // each window state is consistent at a monotonically later point: the
  // cut drops the old link before the newer one enters the window.
  std::vector<Attempt> h;
  h.push_back(committed_update(0, 0, 3, {}, {{0, 99}}));  // overwrites loc 0
  Attempt el;
  el.slot = 1;
  el.serial = 1;
  el.sem = stm::Semantics::kElastic;
  el.outcome = Attempt::Outcome::kCommitted;
  ReadRec w1 = rd(0, 0, 1);  // loc 0 before its overwrite
  w1.in_window = true;
  w1.in_read_set = false;
  ReadRec w2 = rd(1, 4, 2);  // loc 1 at a version only valid at S >= 4
  w2.in_window = true;
  w2.in_read_set = false;
  w2.cut_before = 1;  // the cut evicted the loc-0 read first
  el.reads = {w1, w2};
  h.push_back(el);
  EXPECT_TRUE(check::certify(h).ok);

  // Without the cut both reads share a window: no common point exists.
  h.back().reads[1].cut_before = 0;
  const check::OracleResult r = check::certify(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.what.find("elastic-window"), std::string::npos) << r.what;
}

// ---------------------------------------------------------------------
// Recorder against the live STM
// ---------------------------------------------------------------------

TEST(Recorder, CapturesCommittedUpdateAttempt) {
  stm::TVar<long> x{5};
  stm::TVar<long> y{0};
  check::Recorder rec;
  rec.attach();
  vt::run_sim(1, [&](int) {
    stm::atomically([&](stm::Tx& tx) {
      const long v = x.get(tx);
      y.set(tx, v + 1);
    });
  });
  rec.detach();
  ASSERT_EQ(rec.attempts().size(), 1u);
  const Attempt& a = rec.attempts()[0];
  EXPECT_TRUE(a.committed());
  EXPECT_TRUE(a.update());
  EXPECT_GT(a.wv, 0u);
  ASSERT_EQ(a.reads.size(), 1u);
  EXPECT_EQ(a.reads[0].value, 5u);
  ASSERT_EQ(a.commit_writes.size(), 1u);
  EXPECT_EQ(a.commit_writes[0].value, 6u);
  EXPECT_TRUE(check::certify(rec.attempts()).ok);
}

TEST(Recorder, CapturesAbortReasonAndElasticCuts) {
  // A 3-node elastic traversal with window capacity 2 must cut at least
  // once; the recorder mirrors the eviction into cut_before.
  ds::TxList list({stm::Semantics::kElastic, stm::Semantics::kSnapshot});
  for (long k : {1L, 2L, 3L, 4L, 5L}) list.add(k);
  check::Recorder rec;
  rec.attach();
  vt::run_sim(1, [&](int) { (void)list.contains(5); });
  rec.detach();
  ASSERT_EQ(rec.attempts().size(), 1u);
  const Attempt& a = rec.attempts()[0];
  EXPECT_TRUE(a.committed());
  EXPECT_FALSE(a.update());
  bool saw_cut = false;
  for (const ReadRec& r : a.reads) {
    EXPECT_TRUE(r.in_window);
    if (r.cut_before > 0) saw_cut = true;
  }
  EXPECT_TRUE(saw_cut);
  EXPECT_TRUE(check::certify(rec.attempts()).ok);
}

// ---------------------------------------------------------------------
// Exploration end-to-end + the summary/GV4 legality pair
// ---------------------------------------------------------------------

TEST(Explore, AllWorkloadsCleanUnderSmallPctBudget) {
  for (const std::string& w : check::workload_names()) {
    check::ExploreOptions opts;
    opts.workload = w;
    opts.strategy = "pct";
    opts.schedules = 40;
    opts.seed = 5;
    const check::ExploreResult res = check::explore(opts);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_FALSE(res.found_violation) << w << ": " << res.what;
    EXPECT_EQ(res.schedules_run, 40u);
  }
}

TEST(Explore, DfsOnePreemptionCleanOnListMixed) {
  check::ExploreOptions opts;
  opts.workload = "list-mixed";
  opts.strategy = "dfs";
  opts.dfs_preemptions = 1;
  opts.dfs_depth = 24;
  opts.schedules = 400;
  const check::ExploreResult res = check::explore(opts);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.found_violation) << res.what;
  EXPECT_GT(res.schedules_run, 20u);
}

TEST(Explore, SummaryValidationIsGatedOffUnderGv4) {
  // The (summary, gv4) pair is illegal for the ring fast path: an
  // adopter shares its wv with the winner, so a published slot does not
  // prove all commits at that timestamp have published.  The runtime
  // must fall back to scan validation — and exploration stays clean.
  ConfigOverride ov;
  ov.config().validation_scheme = stm::ValidationScheme::kSummary;
  ov.config().clock_scheme = stm::ClockScheme::kGv4;
  EXPECT_FALSE(stm::Runtime::instance().summary_validation_active());

  for (const char* w : {"bank-skew", "summary-race", "list-mixed"}) {
    check::ExploreOptions opts;
    opts.workload = w;
    opts.strategy = "pct";
    opts.schedules = 60;
    opts.seed = 17;
    const check::ExploreResult res = check::explore(opts);
    EXPECT_FALSE(res.found_violation) << w << ": " << res.what;
  }
}

TEST(Explore, SummaryValidationActiveUnderGv1) {
  ConfigOverride ov;
  ov.config().validation_scheme = stm::ValidationScheme::kSummary;
  ov.config().clock_scheme = stm::ClockScheme::kGv1;
  EXPECT_TRUE(stm::Runtime::instance().summary_validation_active());
  check::ExploreOptions opts;
  opts.workload = "summary-race";
  opts.strategy = "pct";
  opts.schedules = 200;
  opts.seed = 23;
  const check::ExploreResult res = check::explore(opts);
  EXPECT_FALSE(res.found_violation) << res.what;
}

// ---------------------------------------------------------------------
// Injected mutations (in-process variant of the check_inject ctest rows)
// ---------------------------------------------------------------------

TEST(Inject, Gv4SkipFoundAndReplaysDeterministically) {
  ConfigOverride ov;
  ov.config().clock_scheme = stm::ClockScheme::kGv4;
  ov.config().inject_gv4_skip = true;

  check::ExploreOptions opts;
  opts.workload = "bank-skew";
  opts.strategy = "pct";
  opts.schedules = 5000;
  opts.seed = 1;
  const check::ExploreResult res = check::explore(opts);
  ASSERT_TRUE(res.found_violation) << "budget exhausted without detection";
  EXPECT_TRUE(res.replay_verified);
  ASSERT_FALSE(res.token.empty());

  // Two consecutive in-process replays of the token: same verdict (the
  // absolute timestamps differ run to run; fresh-process identity is
  // asserted by the check_inject ctest rows).
  check::ExploreOptions rep;
  rep.strategy = "replay";
  rep.replay_token = res.token;
  const check::ExploreResult r1 = check::explore(rep);
  const check::ExploreResult r2 = check::explore(rep);
  EXPECT_TRUE(r1.found_violation);
  EXPECT_TRUE(r2.found_violation);
}

TEST(Inject, LateSummaryFoundBySummaryRaceWorkload) {
  ConfigOverride ov;
  ov.config().validation_scheme = stm::ValidationScheme::kSummary;
  ov.config().clock_scheme = stm::ClockScheme::kGv1;
  ov.config().inject_late_summary = true;

  check::ExploreOptions opts;
  opts.workload = "summary-race";
  opts.strategy = "pct";
  opts.schedules = 5000;
  opts.seed = 1;
  const check::ExploreResult res = check::explore(opts);
  ASSERT_TRUE(res.found_violation) << "budget exhausted without detection";
  EXPECT_TRUE(res.replay_verified);
  ASSERT_FALSE(res.token.empty());
  const check::ExploreOptions rep = [&] {
    check::ExploreOptions r;
    r.strategy = "replay";
    r.replay_token = res.token;
    return r;
  }();
  EXPECT_TRUE(check::explore(rep).found_violation);
}
