// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Modeled best-effort HTM + software fallback (atomically_hybrid):
// capacity aborts, fallback accounting, zero-overhead hardware reads,
// and correctness under contention.
#include <gtest/gtest.h>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::Semantics;

namespace {
struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};
}  // namespace

TEST(StmHybrid, SmallTransactionCommitsInHardware) {
  stm::Runtime::instance().reset_stats();
  stm::TVar<long> x{1};
  const long v = stm::atomically_hybrid([&](stm::Tx& tx) {
    x.set(tx, x.get(tx) + 1);
    return x.get(tx);
  });
  EXPECT_EQ(v, 2);
  const auto s = stm::Runtime::instance().aggregate_stats();
  EXPECT_EQ(s.htm_commits, 1u);
  EXPECT_EQ(s.htm_fallbacks, 0u);
}

TEST(StmHybrid, CapacityOverflowFallsBackToSoftware) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.htm_capacity = 8;
  stm::Runtime::instance().reset_stats();

  stm::TVar<long> v[20];
  long sum = stm::atomically_hybrid([&](stm::Tx& tx) {
    long s = 0;
    for (auto& c : v) s += c.get(tx);  // footprint 20 > capacity 8
    return s;
  });
  EXPECT_EQ(sum, 0);
  const auto s = stm::Runtime::instance().aggregate_stats();
  EXPECT_EQ(s.htm_commits, 0u);
  EXPECT_EQ(s.htm_fallbacks, 1u);
  EXPECT_EQ(s.aborts_by_reason[static_cast<int>(
                stm::AbortReason::kHtmCapacity)],
            1u)
      << "capacity abort must not be retried in hardware";
}

TEST(StmHybrid, FallbackSemanticsIsHonored) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.htm_capacity = 4;
  stm::Runtime::instance().reset_stats();
  stm::TVar<long> v[10];
  stm::atomically_hybrid(
      [&](stm::Tx& tx) {
        long s = 0;
        for (auto& c : v) s += c.get(tx);
        return s;
      },
      Semantics::kSnapshot);
  const auto s = stm::Runtime::instance().aggregate_stats();
  EXPECT_EQ(s.commits_by_sem[static_cast<int>(Semantics::kSnapshot)], 1u);
}

TEST(StmHybrid, HardwareReadsAreCheaperThanSoftware) {
  // Same body, hybrid vs software: the hardware attempt must consume
  // fewer virtual cycles (no per-read instrumentation surcharge).
  stm::TVar<long>* v = new stm::TVar<long>[32];
  auto body = [&](stm::Tx& tx) {
    long s = 0;
    for (int i = 0; i < 32; ++i) s += v[i].get(tx);
    return s;
  };
  std::uint64_t hw_cycles = 0, sw_cycles = 0;
  {
    vt::Scheduler sched;
    sched.spawn([&](int) { stm::atomically_hybrid(body); });
    sched.run();
    hw_cycles = sched.cycles();
  }
  {
    vt::Scheduler sched;
    sched.spawn([&](int) { stm::atomically(body); });
    sched.run();
    sw_cycles = sched.cycles();
  }
  EXPECT_LT(hw_cycles * 2, sw_cycles)
      << "hardware attempt should be at least ~2x cheaper on a read parse";
  delete[] v;
}

TEST(StmHybrid, ContendedCounterStaysExact) {
  for (std::uint64_t seed : {421u, 422u, 423u}) {
    auto x = std::make_unique<stm::TVar<long>>(0);
    test::run_random_sim(6, seed, [&](int) {
      for (int i = 0; i < 40; ++i)
        stm::atomically_hybrid(
            [&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
    });
    EXPECT_EQ(x->unsafe_load(), 6 * 40) << "seed " << seed;
  }
}

TEST(StmHybrid, MixesWithPureSoftwareTransactions) {
  auto list = std::make_unique<ds::TxList>(
      ds::TxList::Options{Semantics::kElastic, Semantics::kSnapshot});
  std::atomic<long> net{0};
  test::run_random_sim(4, /*seed=*/77, [&](int id) {
    std::uint64_t rng = 13 + static_cast<std::uint64_t>(id);
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 50; ++i) {
      const long k = static_cast<long>(next() % 16);
      if (id % 2 == 0) {  // hybrid updaters
        if ((next() & 1) != 0) {
          if (stm::atomically_hybrid([&](stm::Tx&) { return list->add(k); }))
            ++net;
        } else {
          if (stm::atomically_hybrid(
                  [&](stm::Tx&) { return list->remove(k); }))
            --net;
        }
      } else {  // pure software elastic/snapshot users
        if ((next() & 1) != 0) {
          list->contains(k);
        } else {
          (void)list->size();
        }
      }
    }
  });
  EXPECT_EQ(list->unsafe_size(), net.load());
  test::drain_memory();
}

TEST(StmHybrid, RetryInsideHardwareIsAUsageError) {
  stm::TVar<long> x{0};
  EXPECT_THROW(stm::atomically_hybrid([&](stm::Tx& tx) {
                 (void)x.get(tx);
                 stm::retry(tx);
               }),
               stm::TxUsageError);
}
