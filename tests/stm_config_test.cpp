// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Config-validation regression tests (ISSUE 9 satellite): the DEMOTX_*
// env knobs must parse strictly — garbage keeps the built-in default,
// out-of-range values clamp to the knob's legal interval, and unknown
// enum strings are ignored.  The pre-fix parser used bare atol, so
// DEMOTX_SNAPSHOT_DEPTH=abc silently became depth 1 (atol -> 0 ->
// clamp) instead of keeping the configured default of 2 — the exact
// silent-misconfiguration this suite pins down.
//
// Drives stm::apply_env_overrides against a scratch Config (the Runtime
// itself is a once-per-process singleton that read the environment long
// before this test runs).  Every test restores the touched variables so
// the suite composes with the ctest env-matrix rows (.alt_commit_path /
// .sharded_clock set DEMOTX_CLOCK for the whole process).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "stm/runtime.hpp"

using namespace demotx;

namespace {

// Scoped setenv: remembers and restores the previous value (or absence)
// of every variable it touches.
class EnvGuard {
 public:
  ~EnvGuard() {
    for (const auto& [name, old] : saved_) {
      if (old.has_value())
        ::setenv(name.c_str(), old->c_str(), 1);
      else
        ::unsetenv(name.c_str());
    }
  }
  void set(const char* name, const char* value) {
    save(name);
    ::setenv(name, value, 1);
  }
  void unset(const char* name) {
    save(name);
    ::unsetenv(name);
  }

 private:
  void save(const char* name) {
    for (const auto& [n, v] : saved_)
      if (n == name) return;
    const char* cur = std::getenv(name);
    saved_.emplace_back(name, cur != nullptr
                                  ? std::optional<std::string>(cur)
                                  : std::nullopt);
  }
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

// A scratch config with the env knobs this suite exercises cleared, so
// the ambient ctest row environment (DEMOTX_CLOCK etc.) can't leak in.
stm::Config parse_with(EnvGuard& env, const char* name, const char* value) {
  for (const char* n :
       {"DEMOTX_CLOCK", "DEMOTX_GATE", "DEMOTX_SNAPSHOT_DEPTH",
        "DEMOTX_VALIDATION", "DEMOTX_EPOCH_QUOTA", "DEMOTX_NUMA_DOMAINS",
        "DEMOTX_NUMA_COST", "DEMOTX_OBJECT_OPS", "DEMOTX_GROUP_COMMIT",
        "DEMOTX_GROUP_INTERVAL", "DEMOTX_CHECK_INJECT"})
    env.unset(n);
  env.set(name, value);
  stm::Config c;
  stm::apply_env_overrides(c);
  return c;
}

}  // namespace

TEST(StmConfig, GarbageSnapshotDepthKeepsDefault) {
  EnvGuard env;
  // Pre-fix: atol("abc") == 0, clamped to depth 1 — silently switching
  // the run into the 1-version starvation ablation.  Must keep the
  // built-in default instead.
  const stm::Config c = parse_with(env, "DEMOTX_SNAPSHOT_DEPTH", "abc");
  EXPECT_EQ(c.snapshot_depth, stm::Config{}.snapshot_depth);
}

TEST(StmConfig, TrailingGarbageRejected) {
  EnvGuard env;
  // "4x" must not half-parse to 4.
  const stm::Config c = parse_with(env, "DEMOTX_SNAPSHOT_DEPTH", "4x");
  EXPECT_EQ(c.snapshot_depth, stm::Config{}.snapshot_depth);
}

TEST(StmConfig, SnapshotDepthClampsBothEnds) {
  EnvGuard env;
  EXPECT_EQ(parse_with(env, "DEMOTX_SNAPSHOT_DEPTH", "0").snapshot_depth, 1u);
  EXPECT_EQ(parse_with(env, "DEMOTX_SNAPSHOT_DEPTH", "-3").snapshot_depth,
            1u);
  EXPECT_EQ(parse_with(env, "DEMOTX_SNAPSHOT_DEPTH", "99").snapshot_depth,
            stm::kMaxSnapshotDepth);
  EXPECT_EQ(parse_with(env, "DEMOTX_SNAPSHOT_DEPTH", "4").snapshot_depth, 4u);
}

TEST(StmConfig, ZeroGroupCommitClampsToOne) {
  EnvGuard env;
  // A zero batch would mean "flush after zero commits": the leader's
  // wait predicate could never arm.  Clamp to the no-batching control.
  EXPECT_EQ(parse_with(env, "DEMOTX_GROUP_COMMIT", "0").group_commit_batch,
            1u);
}

TEST(StmConfig, GarbageGroupCommitKeepsDefault) {
  EnvGuard env;
  // Pre-fix: atol garbage -> 0 -> clamp to 1, silently disabling group
  // commit.  Must keep the built-in default batch instead.
  EXPECT_EQ(parse_with(env, "DEMOTX_GROUP_COMMIT", "batchy")
                .group_commit_batch,
            stm::Config{}.group_commit_batch);
}

TEST(StmConfig, GroupIntervalValidated) {
  EnvGuard env;
  EXPECT_EQ(
      parse_with(env, "DEMOTX_GROUP_INTERVAL", "0").group_commit_interval,
      1u);
  EXPECT_EQ(
      parse_with(env, "DEMOTX_GROUP_INTERVAL", "256").group_commit_interval,
      256u);
  EXPECT_EQ(parse_with(env, "DEMOTX_GROUP_INTERVAL", "")
                .group_commit_interval,
            stm::Config{}.group_commit_interval);
}

TEST(StmConfig, EpochQuotaClampsToSeqCapacity) {
  EnvGuard env;
  // The sequence field holds kClockSeqCapacity values; a quota at or
  // above it would make every grant roll the epoch.
  EXPECT_EQ(parse_with(env, "DEMOTX_EPOCH_QUOTA", "999999999")
                .clock_epoch_quota,
            stm::kClockSeqCapacity - 1);
  EXPECT_EQ(parse_with(env, "DEMOTX_EPOCH_QUOTA", "junk").clock_epoch_quota,
            stm::Config{}.clock_epoch_quota);
}

TEST(StmConfig, NumaKnobsValidated) {
  EnvGuard env;
  EXPECT_EQ(parse_with(env, "DEMOTX_NUMA_DOMAINS", "0").numa_domains, 1);
  EXPECT_EQ(parse_with(env, "DEMOTX_NUMA_DOMAINS", "100000").numa_domains,
            vt::kMaxThreads);
  EXPECT_EQ(parse_with(env, "DEMOTX_NUMA_COST", "nope").numa_remote_cost,
            stm::Config{}.numa_remote_cost);
}

TEST(StmConfig, UnknownEnumStringsIgnored) {
  EnvGuard env;
  EXPECT_EQ(parse_with(env, "DEMOTX_CLOCK", "gv9").clock_scheme,
            stm::Config{}.clock_scheme);
  EXPECT_EQ(parse_with(env, "DEMOTX_GATE", "turnstile").gate_scheme,
            stm::Config{}.gate_scheme);
  EXPECT_EQ(parse_with(env, "DEMOTX_VALIDATION", "vibes").validation_scheme,
            stm::Config{}.validation_scheme);
  const stm::Config c = parse_with(env, "DEMOTX_CHECK_INJECT", "no-such-bug");
  EXPECT_FALSE(c.inject_gv4_skip || c.inject_late_summary ||
               c.inject_stale_shard || c.inject_obj_commute ||
               c.inject_torn_write);
}

TEST(StmConfig, ValidValuesStillApply) {
  EnvGuard env;
  EXPECT_EQ(parse_with(env, "DEMOTX_CLOCK", "sharded").clock_scheme,
            stm::ClockScheme::kSharded);
  EXPECT_EQ(parse_with(env, "DEMOTX_GATE", "counter").gate_scheme,
            stm::GateScheme::kCounter);
  EXPECT_EQ(parse_with(env, "DEMOTX_VALIDATION", "summary")
                .validation_scheme,
            stm::ValidationScheme::kSummary);
  EXPECT_TRUE(parse_with(env, "DEMOTX_OBJECT_OPS", "1").object_ops);
  EXPECT_FALSE(parse_with(env, "DEMOTX_OBJECT_OPS", "0").object_ops);
  EXPECT_TRUE(
      parse_with(env, "DEMOTX_CHECK_INJECT", "torn-write").inject_torn_write);
}

TEST(StmConfig, ParseEnvKnobContract) {
  // The shared helper other layers (svc/) reuse: strict parse, clamp,
  // fallback.
  EXPECT_EQ(stm::parse_env_knob("K", "17", 1, 100, 5), 17);
  EXPECT_EQ(stm::parse_env_knob("K", "0", 1, 100, 5), 1);
  EXPECT_EQ(stm::parse_env_knob("K", "1000", 1, 100, 5), 100);
  EXPECT_EQ(stm::parse_env_knob("K", "x17", 1, 100, 5), 5);
  EXPECT_EQ(stm::parse_env_knob("K", "", 1, 100, 5), 5);
  EXPECT_EQ(stm::parse_env_knob("K", "99999999999999999999", 1, 100, 5), 5);
}
