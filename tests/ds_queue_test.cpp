// Transactional queue: FIFO order, composability, snapshot length, and
// no lost/duplicated elements under concurrent producers/consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "ds/tx_queue.hpp"
#include "test_util.hpp"

using namespace demotx;

TEST(TxQueue, FifoSingleThread) {
  ds::TxQueue q;
  EXPECT_EQ(q.dequeue(), std::nullopt);
  q.enqueue(1);
  q.enqueue(2);
  q.enqueue(3);
  EXPECT_EQ(q.snapshot_size(), 3);
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_EQ(q.dequeue(), 2);
  q.enqueue(4);
  EXPECT_EQ(q.dequeue(), 3);
  EXPECT_EQ(q.dequeue(), 4);
  EXPECT_EQ(q.dequeue(), std::nullopt);
  test::drain_memory();
}

TEST(TxQueue, ComposedMoveBetweenQueuesIsAtomic) {
  ds::TxQueue a;
  ds::TxQueue b;
  a.enqueue(42);
  // Move the head of a to b atomically (composition).
  const bool moved = stm::atomically([&](stm::Tx& tx) {
    auto v = a.dequeue(tx);
    if (!v) return false;
    b.enqueue(tx, *v);
    return true;
  });
  EXPECT_TRUE(moved);
  EXPECT_EQ(a.unsafe_size(), 0);
  EXPECT_EQ(b.dequeue(), 42);
  test::drain_memory();
}

TEST(TxQueue, ConcurrentProducersConsumersLoseNothing) {
  for (std::uint64_t seed : {61u, 62u, 63u}) {
    auto q = std::make_unique<ds::TxQueue>();
    constexpr int kProducers = 3;
    constexpr int kPerProducer = 40;
    std::atomic<long> consumed_sum{0};
    std::atomic<long> consumed_count{0};

    test::run_random_sim(kProducers + 2, seed, [&](int id) {
      if (id < kProducers) {
        for (int i = 0; i < kPerProducer; ++i)
          q->enqueue(id * 1000 + i);
      } else {
        for (int i = 0; i < 70; ++i) {
          if (auto v = q->dequeue()) {
            consumed_sum += *v;
            ++consumed_count;
          }
        }
      }
    });
    // Drain the rest single-threaded.
    long total_sum = consumed_sum.load();
    long total_count = consumed_count.load();
    while (auto v = q->dequeue()) {
      total_sum += *v;
      ++total_count;
    }
    long expect_sum = 0;
    for (int id = 0; id < kProducers; ++id)
      for (int i = 0; i < kPerProducer; ++i) expect_sum += id * 1000 + i;
    EXPECT_EQ(total_count, kProducers * kPerProducer) << "seed " << seed;
    EXPECT_EQ(total_sum, expect_sum) << "seed " << seed;
    test::drain_memory();
  }
}

TEST(TxQueue, PerProducerOrderPreserved) {
  // FIFO per producer: a consumer must see each producer's items in
  // increasing order.
  auto q = std::make_unique<ds::TxQueue>();
  std::vector<long> seen;
  test::run_random_sim(3, /*seed=*/9, [&](int id) {
    if (id < 2) {
      for (int i = 0; i < 30; ++i) q->enqueue(id * 1000 + i);
    } else {
      for (int i = 0; i < 70; ++i) {
        if (auto v = q->dequeue()) seen.push_back(*v);
      }
    }
  });
  while (auto v = q->dequeue()) seen.push_back(*v);
  long last0 = -1, last1 = -1;
  for (long v : seen) {
    if (v < 1000) {
      EXPECT_GT(v, last0);
      last0 = v;
    } else {
      EXPECT_GT(v, last1);
      last1 = v;
    }
  }
  EXPECT_EQ(seen.size(), 60u);
  test::drain_memory();
}

TEST(TxQueue, SnapshotSizeRunsAgainstProducers) {
  auto q = std::make_unique<ds::TxQueue>();
  for (int i = 0; i < 10; ++i) q->enqueue(i);
  std::atomic<bool> bad{false};
  test::run_rr_sim(3, [&](int id) {
    if (id == 0) {
      for (int i = 0; i < 20; ++i) {
        const long s = q->snapshot_size();
        if (s < 10 || s > 10 + 2 * 30) bad.store(true);
      }
    } else {
      for (int i = 0; i < 30; ++i) q->enqueue(100 + i);
    }
  });
  EXPECT_FALSE(bad.load());
  test::drain_memory();
}
