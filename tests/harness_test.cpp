// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Harness: workload generation (mix, determinism), prefill, and the
// simulated/real drivers, including the consistency of reported results.
#include <gtest/gtest.h>

#include <sstream>

#include "ds/tx_list.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"
#include "sync/coarse_list.hpp"
#include "sync/seq_list.hpp"
#include "test_util.hpp"

using namespace demotx;
using namespace demotx::harness;

TEST(Workload, MixMatchesConfiguredPercentages) {
  WorkloadConfig cfg;
  cfg.contains_pct = 80;
  cfg.add_pct = 5;
  cfg.remove_pct = 5;
  cfg.size_pct = 10;
  ASSERT_TRUE(cfg.valid());
  OpGenerator gen(cfg, 0);
  int counts[4] = {};
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++counts[static_cast<int>(gen.next_kind())];
  EXPECT_NEAR(counts[0] / double(kN), 0.80, 0.02);
  EXPECT_NEAR(counts[1] / double(kN), 0.05, 0.01);
  EXPECT_NEAR(counts[2] / double(kN), 0.05, 0.01);
  EXPECT_NEAR(counts[3] / double(kN), 0.10, 0.01);
}

TEST(Workload, KeysStayInRange) {
  WorkloadConfig cfg;
  cfg.key_range = 64;
  OpGenerator gen(cfg, 3);
  for (int i = 0; i < 10'000; ++i) {
    const long k = gen.next_key();
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 64);
  }
}

TEST(Workload, SkewConcentratesKeys) {
  WorkloadConfig uniform;
  uniform.key_range = 1000;
  WorkloadConfig hot = uniform;
  hot.skew = 1.0;
  OpGenerator gu(uniform, 1);
  OpGenerator gh(hot, 1);
  int low_u = 0, low_h = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    if (gu.next_key() < 100) ++low_u;
    const long k = gh.next_key();
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 1000);
    if (k < 100) ++low_h;
  }
  EXPECT_NEAR(low_u / double(kN), 0.10, 0.02);
  // With exponent 5, P(key < 10% of range) = 0.1^(1/5) ~ 0.63.
  EXPECT_GT(low_h / double(kN), 0.5);
}

TEST(Workload, GeneratorsAreDeterministicAndPerThread) {
  WorkloadConfig cfg;
  OpGenerator a1(cfg, 1);
  OpGenerator a2(cfg, 1);
  OpGenerator b(cfg, 2);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const long k1 = a1.next_key();
    EXPECT_EQ(k1, a2.next_key());
    if (k1 != b.next_key()) differs = true;
  }
  EXPECT_TRUE(differs) << "different threads must see different streams";
}

TEST(Workload, PrefillReachesExactInitialSize) {
  WorkloadConfig cfg;
  cfg.initial_size = 100;
  cfg.key_range = 200;
  sync::SeqList set;
  prefill(set, cfg);
  EXPECT_EQ(set.unsafe_size(), 100);
}

TEST(Driver, SimWorkloadIsDeterministic) {
  WorkloadConfig cfg;
  cfg.initial_size = 32;
  cfg.key_range = 64;
  SimOptions opts;
  opts.duration_cycles = 20'000;

  auto run_once = [&] {
    sync::CoarseList set;
    prefill(set, cfg);
    return run_sim_workload(set, cfg, 3, opts);
  };
  const DriverResult a = run_once();
  const DriverResult b = run_once();
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.net_adds, b.net_adds);
  EXPECT_GT(a.total_ops, 0u);
}

TEST(Driver, NetAddsMatchFinalSize) {
  WorkloadConfig cfg;
  cfg.initial_size = 32;
  cfg.key_range = 64;
  SimOptions opts;
  opts.duration_cycles = 30'000;

  for (int threads : {1, 2, 4}) {
    auto set = std::make_unique<ds::TxList>(ds::TxList::Options{
        stm::Semantics::kElastic, stm::Semantics::kSnapshot});
    prefill(*set, cfg);
    const DriverResult r = run_sim_workload(*set, cfg, threads, opts);
    EXPECT_EQ(set->unsafe_size(), cfg.initial_size + r.net_adds)
        << threads << " threads";
    EXPECT_GT(r.total_ops, 0u);
    if (r.sizes_observed > 0) {
      EXPECT_GE(r.min_size_seen, 0);
      EXPECT_LE(r.max_size_seen, cfg.key_range);
    }
    test::drain_memory();
  }
}

TEST(Driver, StmStatsAreCollected) {
  WorkloadConfig cfg;
  cfg.initial_size = 16;
  cfg.key_range = 32;
  SimOptions opts;
  opts.duration_cycles = 15'000;
  auto set = std::make_unique<ds::TxList>(ds::TxList::Options{
      stm::Semantics::kElastic, stm::Semantics::kSnapshot});
  prefill(*set, cfg);
  const DriverResult r = run_sim_workload(*set, cfg, 2, opts);
  EXPECT_GE(r.stm.commits, r.total_ops);
  test::drain_memory();
}

TEST(Driver, RealThreadsRunTheWorkloadToo) {
  WorkloadConfig cfg;
  cfg.initial_size = 16;
  cfg.key_range = 32;
  RealOptions opts;
  opts.duration_ms = 30;
  auto set = std::make_unique<ds::TxList>(ds::TxList::Options{
      stm::Semantics::kElastic, stm::Semantics::kSnapshot});
  prefill(*set, cfg);
  const DriverResult r = run_real_workload(*set, cfg, 2, opts);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_EQ(set->unsafe_size(), cfg.initial_size + r.net_adds);
  test::drain_memory();
}

TEST(Report, TableAlignsAndEmitsCsv) {
  Table t({"threads", "throughput"});
  t.add_row({"1", "10.5"});
  t.add_row({"64", "123.45"});
  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("threads"), std::string::npos);
  EXPECT_NE(text.str().find("123.45"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv, "fig5");
  EXPECT_NE(csv.str().find("CSV,fig5,threads,throughput"), std::string::npos);
  EXPECT_NE(csv.str().find("CSV,fig5,64,123.45"), std::string::npos);
}

TEST(Report, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(7L), "7");
}
