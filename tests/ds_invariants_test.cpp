// Structural invariants of the tree/skip-list structures after concurrent
// churn, plus unit coverage for TxCounter, TxStats merging and the
// sim-aware Backoff primitive.
#include <gtest/gtest.h>

#include <set>

#include "ds/tx_bst.hpp"
#include "ds/tx_counter.hpp"
#include "ds/tx_skiplist.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"
#include "vt/sync.hpp"

using namespace demotx;

TEST(SkipListInvariant, BottomLevelSortedAndDuplicateFree) {
  auto sl = std::make_unique<ds::TxSkipList>();
  test::run_random_sim(4, /*seed=*/404, [&](int id) {
    std::uint64_t rng = 5 + static_cast<std::uint64_t>(id) * 101;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 100; ++i) {
      const long k = static_cast<long>(next() % 40);
      if ((next() & 1) != 0) {
        sl->add(k);
      } else {
        sl->remove(k);
      }
    }
  });
  // Quiescent walk: strictly increasing keys, size agrees, contains agrees.
  std::set<long> seen;
  long prev = -1;
  long n = 0;
  // Use the public surface only: size + contains cross-check.
  for (long k = 0; k < 40; ++k) {
    if (sl->contains(k)) {
      EXPECT_GT(k, prev);
      prev = k;
      seen.insert(k);
      ++n;
    }
  }
  EXPECT_EQ(sl->unsafe_size(), n);
  EXPECT_EQ(sl->size(), n);
  test::drain_memory();
}

TEST(BstInvariant, InOrderMatchesContains) {
  auto bst = std::make_unique<ds::TxBst>();
  test::run_random_sim(4, /*seed=*/505, [&](int id) {
    std::uint64_t rng = 11 + static_cast<std::uint64_t>(id) * 7;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 100; ++i) {
      const long k = static_cast<long>(next() % 40);
      if ((next() & 1) != 0) {
        bst->add(k);
      } else {
        bst->remove(k);
      }
    }
  });
  long n = 0;
  for (long k = 0; k < 40; ++k)
    if (bst->contains(k)) ++n;
  EXPECT_EQ(bst->unsafe_size(), n);
  EXPECT_EQ(bst->size(), n);
  test::drain_memory();
}

TEST(TxCounterUnit, TransactionalAndStandaloneOps) {
  ds::TxCounter c{10};
  EXPECT_EQ(c.unsafe_get(), 10);
  EXPECT_EQ(c.increment_atomically(5), 15);
  stm::atomically([&](stm::Tx& tx) {
    c.add(tx, -3);
    EXPECT_EQ(c.get(tx), 12);
  });
  EXPECT_EQ(c.unsafe_get(), 12);
}

TEST(TxCounterUnit, ConcurrentIncrementsSumExactly) {
  auto c = std::make_unique<ds::TxCounter>(0);
  test::run_random_sim(5, /*seed=*/606, [&](int) {
    for (int i = 0; i < 40; ++i) c->increment_atomically();
  });
  EXPECT_EQ(c->unsafe_get(), 200);
}

TEST(TxStatsUnit, MergeAddsEveryField) {
  stm::TxStats a;
  a.starts = 3;
  a.commits = 2;
  a.aborts = 1;
  a.reads = 10;
  a.writes = 4;
  a.elastic_cuts = 5;
  a.snapshot_old_reads = 6;
  a.aborts_by_reason[0] = 1;
  a.commits_by_sem[1] = 2;
  stm::TxStats b = a;
  b.merge(a);
  EXPECT_EQ(b.starts, 6u);
  EXPECT_EQ(b.commits, 4u);
  EXPECT_EQ(b.aborts, 2u);
  EXPECT_EQ(b.reads, 20u);
  EXPECT_EQ(b.writes, 8u);
  EXPECT_EQ(b.elastic_cuts, 10u);
  EXPECT_EQ(b.snapshot_old_reads, 12u);
  EXPECT_EQ(b.aborts_by_reason[0], 2u);
  EXPECT_EQ(b.commits_by_sem[1], 4u);
  EXPECT_DOUBLE_EQ(b.abort_ratio(), 2.0 / 6.0);
  EXPECT_FALSE(b.summary().empty());
}

TEST(VtBackoff, GrowsAndResets) {
  vt::Backoff b(2, 16);
  EXPECT_EQ(b.current_delay(), 2u);
  b.wait();
  EXPECT_EQ(b.current_delay(), 4u);
  b.wait();
  b.wait();
  b.wait();
  EXPECT_EQ(b.current_delay(), 16u);  // capped
  b.wait();
  EXPECT_EQ(b.current_delay(), 16u);
  b.reset(3);
  EXPECT_EQ(b.current_delay(), 3u);
}

TEST(VtBackoff, ChargesVirtualTimeInSim) {
  vt::Scheduler sched;
  sched.spawn([](int) {
    vt::Backoff b(4, 64);
    b.wait();  // 4 cycles
    b.wait();  // 8 cycles
  });
  sched.run();
  EXPECT_EQ(sched.cycles(), 12u);
}
