// Stats-aggregation regression tests (ISSUE 9 satellite): TxStats::merge
// must saturate instead of wrapping (long open-loop service runs push
// per-thread counters toward the 64-bit edge, and a wrapped aggregate
// reads as a near-idle run), and the desc_heap_bytes GAUGE must not be
// summed when two aggregates merge — pre-fix, folding two harness
// aggregates double-counted every descriptor heap.
#include <gtest/gtest.h>

#include <cstdint>

#include "stm/stats.hpp"

using demotx::stm::TxStats;

TEST(StmStats, MergeSaturatesScalars) {
  TxStats a;
  TxStats b;
  a.starts = UINT64_MAX - 5;
  b.starts = 10;
  a.reads = UINT64_MAX;
  b.reads = 1;
  b.writes = 3;
  a.merge(b);
  // Pre-fix: UINT64_MAX-5 + 10 wraps to 4.
  EXPECT_EQ(a.starts, UINT64_MAX);
  EXPECT_EQ(a.reads, UINT64_MAX);
  EXPECT_EQ(a.writes, 3u);
}

TEST(StmStats, MergeSaturatesArrays) {
  TxStats a;
  TxStats b;
  a.commits_by_sem[1] = UINT64_MAX - 1;
  b.commits_by_sem[1] = 7;
  a.aborts_by_sem[2] = UINT64_MAX;
  b.aborts_by_sem[2] = UINT64_MAX;
  a.aborts_by_reason[0] = UINT64_MAX - 2;
  b.aborts_by_reason[0] = 2;  // exact ceiling, no wrap
  a.merge(b);
  EXPECT_EQ(a.commits_by_sem[1], UINT64_MAX);
  EXPECT_EQ(a.aborts_by_sem[2], UINT64_MAX);
  EXPECT_EQ(a.aborts_by_reason[0], UINT64_MAX);
}

TEST(StmStats, MergePreservesExactSums) {
  TxStats a;
  TxStats b;
  a.commits = 40;
  b.commits = 2;
  a.aborts_by_reason[3] = 5;
  b.aborts_by_reason[3] = 6;
  a.merge(b);
  EXPECT_EQ(a.commits, 42u);
  EXPECT_EQ(a.aborts_by_reason[3], 11u);
}

TEST(StmStats, HeapGaugeNotDoubledAcrossAggregates) {
  // Two aggregates that each already include the same thread's heap
  // reservation: the pre-fix += doubled the gauge on every fold.
  TxStats agg1;
  TxStats agg2;
  agg1.desc_heap_bytes = 4096;
  agg2.desc_heap_bytes = 4096;
  agg1.merge(agg2);
  EXPECT_EQ(agg1.desc_heap_bytes, 4096u);

  // And a larger gauge wins — merging never shrinks the reservation.
  TxStats agg3;
  agg3.desc_heap_bytes = 8192;
  agg1.merge(agg3);
  EXPECT_EQ(agg1.desc_heap_bytes, 8192u);
}

TEST(StmStats, SatAddContract) {
  EXPECT_EQ(TxStats::sat_add(0, 0), 0u);
  EXPECT_EQ(TxStats::sat_add(1, 2), 3u);
  EXPECT_EQ(TxStats::sat_add(UINT64_MAX, 0), UINT64_MAX);
  EXPECT_EQ(TxStats::sat_add(UINT64_MAX, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(TxStats::sat_add(UINT64_MAX - 1, 1), UINT64_MAX);
}
